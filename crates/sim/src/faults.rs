//! Transient-fault injection — the adversary of Definition 1 — plus the
//! dynamic-topology adversary.
//!
//! Self-stabilization is convergence from an *arbitrary* configuration:
//! corrupted local variables, corrupted neighbor mirrors, arbitrary channel
//! contents. The simulator realizes that adversary in three ways:
//!
//! 1. **Corrupt-at-birth**: build automata with randomized garbage state
//!    (the protocol crate's constructors take an "initial state" policy);
//! 2. **Runtime corruption** via [`Corrupt`] + [`inject`]: after the system
//!    stabilizes, scramble a fraction of the nodes and optionally the
//!    channels, then measure re-convergence (experiment F2);
//! 3. **Topology churn** via [`ChurnEvent`] / [`TopologyPlan`] +
//!    [`apply_churn`]: edges are removed and inserted, nodes crash and
//!    rejoin with stale state, partitions form and heal. Every churn event
//!    changes the constraint set the protocol is fitting, so the
//!    interesting measurement is *re-convergence after each event*
//!    (experiment family D).

use crate::automaton::Automaton;
use crate::network::Network;
use crate::NodeId;
use rand::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssmdst_graph::{biconnectivity, Graph};

/// Automata that can have their state scrambled by the transient-fault
/// adversary.
pub trait Corrupt {
    /// Overwrite local state (including neighbor mirrors) with arbitrary
    /// values drawn from `rng`. Implementations must leave the node able to
    /// execute (no panics on the garbage), but need not leave it coherent —
    /// that is the whole point.
    fn corrupt(&mut self, rng: &mut StdRng);
}

/// Description of a fault burst.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Fraction of nodes to corrupt (0.0..=1.0).
    pub node_fraction: f64,
    /// Probability that each in-flight message is dropped.
    pub message_drop: f64,
    /// RNG seed for victim selection and garbage generation.
    pub seed: u64,
}

impl FaultPlan {
    /// Corrupt every node and clear all channels — the harshest transient
    /// fault (a full reset into garbage).
    pub fn total(seed: u64) -> Self {
        FaultPlan {
            node_fraction: 1.0,
            message_drop: 1.0,
            seed,
        }
    }

    /// Corrupt a fraction of nodes, leave channels intact.
    pub fn partial(node_fraction: f64, seed: u64) -> Self {
        FaultPlan {
            node_fraction,
            message_drop: 0.0,
            seed,
        }
    }
}

/// Apply a fault burst to the network; returns the victims (sorted).
pub fn inject<A: Automaton + Corrupt>(net: &mut Network<A>, plan: FaultPlan) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(plan.seed);
    let n = net.n();
    let k = ((n as f64) * plan.node_fraction).round() as usize;
    let mut victims: Vec<NodeId> = (0..n as NodeId).collect();
    victims.shuffle(&mut rng);
    victims.truncate(k.min(n));
    victims.sort_unstable();
    for &v in &victims {
        net.node_mut(v).corrupt(&mut rng);
    }
    if plan.message_drop >= 1.0 {
        net.clear_channels();
    } else if plan.message_drop > 0.0 {
        net.drop_in_flight(plan.message_drop, &mut rng);
    }
    victims
}

// ----------------------------------------------------------------------
// Dynamic topology: churn events and fault plans
// ----------------------------------------------------------------------

/// One dynamic-topology fault: a structural change applied between rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Remove the undirected edge `{u, v}`; in-flight messages on it are
    /// lost.
    RemoveEdge(NodeId, NodeId),
    /// Insert the undirected edge `{u, v}` with fresh empty channels.
    InsertEdge(NodeId, NodeId),
    /// Crash node `v`: it stops stepping, its incident edges disappear.
    CrashNode(NodeId),
    /// Rejoin a crashed node with whatever stale state it crashed with.
    RejoinNode(NodeId),
    /// Cut every listed edge at once (a network partition).
    Partition(Vec<(NodeId, NodeId)>),
    /// Re-insert every listed edge at once (the partition heals).
    Heal(Vec<(NodeId, NodeId)>),
}

impl std::fmt::Display for ChurnEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnEvent::RemoveEdge(u, v) => write!(f, "-edge({u},{v})"),
            ChurnEvent::InsertEdge(u, v) => write!(f, "+edge({u},{v})"),
            ChurnEvent::CrashNode(v) => write!(f, "crash({v})"),
            ChurnEvent::RejoinNode(v) => write!(f, "rejoin({v})"),
            ChurnEvent::Partition(cut) => write!(f, "partition(|cut|={})", cut.len()),
            ChurnEvent::Heal(cut) => write!(f, "heal(|cut|={})", cut.len()),
        }
    }
}

/// Apply one churn event to the network. Returns the number of structural
/// mutations actually performed (0 means the event was a no-op, e.g.
/// removing an edge that is already gone).
pub fn apply_churn<A: Automaton>(net: &mut Network<A>, ev: &ChurnEvent) -> usize {
    match ev {
        ChurnEvent::RemoveEdge(u, v) => net.remove_edge(*u, *v) as usize,
        ChurnEvent::InsertEdge(u, v) => net.insert_edge(*u, *v) as usize,
        ChurnEvent::CrashNode(v) => net.crash_node(*v) as usize,
        ChurnEvent::RejoinNode(v) => net.rejoin_node(*v) as usize,
        ChurnEvent::Partition(cut) => cut.iter().filter(|&&(u, v)| net.remove_edge(u, v)).count(),
        ChurnEvent::Heal(cut) => cut.iter().filter(|&&(u, v)| net.insert_edge(u, v)).count(),
    }
}

/// An ordered sequence of churn events. The experiment driver applies one
/// event, lets the protocol re-stabilize, checks the re-converged tree,
/// then applies the next — measuring exactly the re-convergence-under-
/// perturbation regime of the iterative-fitting literature.
#[derive(Debug, Clone, Default)]
pub struct TopologyPlan {
    /// Events in application order.
    pub events: Vec<ChurnEvent>,
}

impl TopologyPlan {
    /// Edge churn: pick up to `k` distinct non-bridge edges of `g` (seeded
    /// choice) and alternate removing and re-inserting each, so the graph
    /// stays connected at every step and every event forces the tree to
    /// re-fit a changed cycle space.
    pub fn edge_churn(g: &Graph, k: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bridges = biconnectivity(g).bridges;
        let mut candidates: Vec<(NodeId, NodeId)> = g
            .edges()
            .iter()
            .copied()
            .filter(|&(u, v)| {
                let e = if u < v { (u, v) } else { (v, u) };
                bridges.binary_search(&e).is_err()
            })
            .collect();
        candidates.shuffle(&mut rng);
        candidates.truncate(k);
        let mut events = Vec::with_capacity(2 * candidates.len());
        for (u, v) in candidates {
            events.push(ChurnEvent::RemoveEdge(u, v));
            events.push(ChurnEvent::InsertEdge(u, v));
        }
        TopologyPlan { events }
    }

    /// Node churn: pick up to `k` non-articulation nodes (seeded choice)
    /// and crash/rejoin each in turn, so the surviving subgraph stays
    /// connected while crashed.
    pub fn node_churn(g: &Graph, k: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let arts = biconnectivity(g).articulation_points;
        let mut candidates: Vec<NodeId> = g
            .nodes()
            .filter(|v| arts.binary_search(v).is_err())
            .collect();
        candidates.shuffle(&mut rng);
        candidates.truncate(k);
        let mut events = Vec::with_capacity(2 * candidates.len());
        for v in candidates {
            events.push(ChurnEvent::CrashNode(v));
            events.push(ChurnEvent::RejoinNode(v));
        }
        TopologyPlan { events }
    }

    /// Partition/heal: split the vertex set in half by BFS order from a
    /// seeded start node, cut every crossing edge at once, then heal them
    /// all. While split, each side must independently re-stabilize to its
    /// own tree; after healing, the sides must merge back under one root.
    pub fn partition_heal(g: &Graph, seed: u64) -> Self {
        if g.n() == 0 {
            return TopologyPlan::default();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let start = rng.random_range(0..g.n()) as NodeId;
        // BFS from `start`; the first half of the visit order is side A.
        let mut side_a = vec![false; g.n()];
        let mut order = Vec::with_capacity(g.n());
        let mut seen = vec![false; g.n()];
        let mut queue = std::collections::VecDeque::from([start]);
        seen[start as usize] = true;
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in g.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
        for &v in order.iter().take(g.n() / 2) {
            side_a[v as usize] = true;
        }
        let cut: Vec<(NodeId, NodeId)> = g
            .edges()
            .iter()
            .copied()
            .filter(|&(u, v)| side_a[u as usize] != side_a[v as usize])
            .collect();
        TopologyPlan {
            events: vec![ChurnEvent::Partition(cut.clone()), ChurnEvent::Heal(cut)],
        }
    }

    /// A mixed scenario: edge churn, then node churn, then partition/heal —
    /// the full dynamic-topology gauntlet used by the D experiments.
    pub fn gauntlet(g: &Graph, seed: u64) -> Self {
        let mut events = Self::edge_churn(g, 2, seed).events;
        events.extend(Self::node_churn(g, 1, seed.wrapping_add(1)).events);
        events.extend(Self::partition_heal(g, seed.wrapping_add(2)).events);
        TopologyPlan { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{Message, Outbox};
    use ssmdst_graph::generators::structured::cycle;

    #[derive(Debug)]
    struct Cell {
        neighbors: Vec<NodeId>,
        value: u64,
    }

    #[derive(Debug, Clone)]
    struct Noop;
    impl Message for Noop {
        fn kind(&self) -> &'static str {
            "Noop"
        }
        fn size_bits(&self, _n: usize) -> usize {
            1
        }
    }

    impl Automaton for Cell {
        type Msg = Noop;
        fn tick(&mut self, out: &mut Outbox<Noop>) {
            for &w in &self.neighbors {
                out.send(w, Noop);
            }
        }
        fn receive(&mut self, _: NodeId, _: Noop, _: &mut Outbox<Noop>) {}
    }

    impl Corrupt for Cell {
        fn corrupt(&mut self, rng: &mut StdRng) {
            self.value = rng.random();
        }
    }

    fn net() -> Network<Cell> {
        let g = cycle(10).unwrap();
        Network::from_graph(&g, |_, nbrs| Cell {
            neighbors: nbrs.to_vec(),
            value: 0,
        })
    }

    #[test]
    fn partial_fault_hits_requested_fraction() {
        let mut n = net();
        let victims = inject(&mut n, FaultPlan::partial(0.5, 1));
        assert_eq!(victims.len(), 5);
        let corrupted = n.nodes().iter().filter(|c| c.value != 0).count();
        // Victim values are random u64; all-zero garbage is (2^-64)-unlikely.
        assert_eq!(corrupted, 5);
    }

    #[test]
    fn total_fault_clears_channels_and_hits_everyone() {
        let mut n = net();
        n.tick_node(0);
        assert!(n.in_flight() > 0);
        let victims = inject(&mut n, FaultPlan::total(2));
        assert_eq!(victims.len(), 10);
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn fault_injection_is_seed_deterministic() {
        let run = |seed| {
            let mut n = net();
            inject(&mut n, FaultPlan::partial(0.3, seed));
            n.nodes().iter().map(|c| c.value).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn zero_fraction_corrupts_nobody() {
        let mut n = net();
        let victims = inject(&mut n, FaultPlan::partial(0.0, 1));
        assert!(victims.is_empty());
        assert!(n.nodes().iter().all(|c| c.value == 0));
    }

    #[test]
    fn edge_churn_plan_avoids_bridges() {
        // A path is all bridges: no candidates, empty plan.
        let p = ssmdst_graph::generators::structured::path(6).unwrap();
        assert!(TopologyPlan::edge_churn(&p, 3, 1).events.is_empty());
        // A cycle has no bridges: every edge qualifies.
        let c = cycle(8).unwrap();
        let plan = TopologyPlan::edge_churn(&c, 3, 1);
        assert_eq!(plan.events.len(), 6, "remove+insert per chosen edge");
        for pair in plan.events.chunks(2) {
            match (&pair[0], &pair[1]) {
                (ChurnEvent::RemoveEdge(a, b), ChurnEvent::InsertEdge(c, d)) => {
                    assert_eq!((a, b), (c, d), "each edge comes back");
                }
                other => panic!("unexpected event pair {other:?}"),
            }
        }
    }

    #[test]
    fn node_churn_plan_avoids_articulation_points() {
        // star_with_ring? keep it simple: a path's interior nodes are all
        // articulation points, so only the two endpoints qualify.
        let p = ssmdst_graph::generators::structured::path(6).unwrap();
        let plan = TopologyPlan::node_churn(&p, 10, 3);
        assert_eq!(plan.events.len(), 4, "only the 2 endpoints are safe");
        for pair in plan.events.chunks(2) {
            assert!(matches!(pair[0], ChurnEvent::CrashNode(v) if v == 0 || v == 5));
            assert!(matches!(pair[1], ChurnEvent::RejoinNode(_)));
        }
    }

    #[test]
    fn partition_heal_plan_cuts_and_restores_the_same_edges() {
        let c = cycle(10).unwrap();
        let plan = TopologyPlan::partition_heal(&c, 7);
        assert_eq!(plan.events.len(), 2);
        let (ChurnEvent::Partition(cut), ChurnEvent::Heal(heal)) =
            (&plan.events[0], &plan.events[1])
        else {
            panic!("unexpected plan shape {:?}", plan.events);
        };
        assert_eq!(cut, heal);
        assert_eq!(cut.len(), 2, "a cycle split in two halves has a 2-edge cut");
    }

    #[test]
    fn apply_churn_counts_mutations_and_is_idempotent_on_noops() {
        let mut n = net(); // 10-cycle
        let ev = ChurnEvent::RemoveEdge(0, 1);
        assert_eq!(apply_churn(&mut n, &ev), 1);
        assert_eq!(apply_churn(&mut n, &ev), 0, "already removed");
        let heal = ChurnEvent::Heal(vec![(0, 1), (5, 6)]);
        // (5,6) still exists, only (0,1) is re-inserted.
        assert_eq!(apply_churn(&mut n, &heal), 1);
        assert_eq!(apply_churn(&mut n, &ChurnEvent::CrashNode(3)), 1);
        assert_eq!(apply_churn(&mut n, &ChurnEvent::RejoinNode(3)), 1);
    }

    #[test]
    fn churn_events_render_for_tables() {
        assert_eq!(ChurnEvent::RemoveEdge(1, 2).to_string(), "-edge(1,2)");
        assert_eq!(ChurnEvent::CrashNode(7).to_string(), "crash(7)");
        assert_eq!(
            ChurnEvent::Partition(vec![(0, 1), (2, 3)]).to_string(),
            "partition(|cut|=2)"
        );
    }
}
