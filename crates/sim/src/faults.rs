//! Transient-fault injection — the adversary of Definition 1.
//!
//! Self-stabilization is convergence from an *arbitrary* configuration:
//! corrupted local variables, corrupted neighbor mirrors, arbitrary channel
//! contents. The simulator realizes that adversary in two ways:
//!
//! 1. **Corrupt-at-birth**: build automata with randomized garbage state
//!    (the protocol crate's constructors take an "initial state" policy);
//! 2. **Runtime corruption** via [`Corrupt`] + [`inject`]: after the system
//!    stabilizes, scramble a fraction of the nodes and optionally the
//!    channels, then measure re-convergence (experiment F2).

use crate::automaton::Automaton;
use crate::network::Network;
use crate::NodeId;
use rand::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Automata that can have their state scrambled by the transient-fault
/// adversary.
pub trait Corrupt {
    /// Overwrite local state (including neighbor mirrors) with arbitrary
    /// values drawn from `rng`. Implementations must leave the node able to
    /// execute (no panics on the garbage), but need not leave it coherent —
    /// that is the whole point.
    fn corrupt(&mut self, rng: &mut StdRng);
}

/// Description of a fault burst.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Fraction of nodes to corrupt (0.0..=1.0).
    pub node_fraction: f64,
    /// Probability that each in-flight message is dropped.
    pub message_drop: f64,
    /// RNG seed for victim selection and garbage generation.
    pub seed: u64,
}

impl FaultPlan {
    /// Corrupt every node and clear all channels — the harshest transient
    /// fault (a full reset into garbage).
    pub fn total(seed: u64) -> Self {
        FaultPlan {
            node_fraction: 1.0,
            message_drop: 1.0,
            seed,
        }
    }

    /// Corrupt a fraction of nodes, leave channels intact.
    pub fn partial(node_fraction: f64, seed: u64) -> Self {
        FaultPlan {
            node_fraction,
            message_drop: 0.0,
            seed,
        }
    }
}

/// Apply a fault burst to the network; returns the victims (sorted).
pub fn inject<A: Automaton + Corrupt>(net: &mut Network<A>, plan: FaultPlan) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(plan.seed);
    let n = net.n();
    let k = ((n as f64) * plan.node_fraction).round() as usize;
    let mut victims: Vec<NodeId> = (0..n as NodeId).collect();
    victims.shuffle(&mut rng);
    victims.truncate(k.min(n));
    victims.sort_unstable();
    for &v in &victims {
        net.node_mut(v).corrupt(&mut rng);
    }
    if plan.message_drop >= 1.0 {
        net.clear_channels();
    } else if plan.message_drop > 0.0 {
        net.drop_in_flight(plan.message_drop, &mut rng);
    }
    victims
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{Message, Outbox};
    use ssmdst_graph::generators::structured::cycle;

    #[derive(Debug)]
    struct Cell {
        neighbors: Vec<NodeId>,
        value: u64,
    }

    #[derive(Debug, Clone)]
    struct Noop;
    impl Message for Noop {
        fn kind(&self) -> &'static str {
            "Noop"
        }
        fn size_bits(&self, _n: usize) -> usize {
            1
        }
    }

    impl Automaton for Cell {
        type Msg = Noop;
        fn tick(&mut self, out: &mut Outbox<Noop>) {
            for &w in &self.neighbors {
                out.send(w, Noop);
            }
        }
        fn receive(&mut self, _: NodeId, _: Noop, _: &mut Outbox<Noop>) {}
    }

    impl Corrupt for Cell {
        fn corrupt(&mut self, rng: &mut StdRng) {
            self.value = rng.random();
        }
    }

    fn net() -> Network<Cell> {
        let g = cycle(10).unwrap();
        Network::from_graph(&g, |_, nbrs| Cell {
            neighbors: nbrs.to_vec(),
            value: 0,
        })
    }

    #[test]
    fn partial_fault_hits_requested_fraction() {
        let mut n = net();
        let victims = inject(&mut n, FaultPlan::partial(0.5, 1));
        assert_eq!(victims.len(), 5);
        let corrupted = n.nodes().iter().filter(|c| c.value != 0).count();
        // Victim values are random u64; all-zero garbage is (2^-64)-unlikely.
        assert_eq!(corrupted, 5);
    }

    #[test]
    fn total_fault_clears_channels_and_hits_everyone() {
        let mut n = net();
        n.tick_node(0);
        assert!(n.in_flight() > 0);
        let victims = inject(&mut n, FaultPlan::total(2));
        assert_eq!(victims.len(), 10);
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn fault_injection_is_seed_deterministic() {
        let run = |seed| {
            let mut n = net();
            inject(&mut n, FaultPlan::partial(0.3, seed));
            n.nodes().iter().map(|c| c.value).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn zero_fraction_corrupts_nobody() {
        let mut n = net();
        let victims = inject(&mut n, FaultPlan::partial(0.0, 1));
        assert!(victims.is_empty());
        assert!(n.nodes().iter().all(|c| c.value == 0));
    }
}
