//! # ssmdst-sim
//!
//! A deterministic discrete-event simulator for asynchronous message-passing
//! networks with reliable FIFO channels — the execution model of Blin,
//! Gradinariu Potop-Butucaru & Rovedakis (IPDPS 2009).
//!
//! Model (paper §2):
//!
//! * nodes are state machines ([`Automaton`]) that take **atomic steps**: one
//!   receive (or one spontaneous *tick* of the do-forever loop) plus local
//!   computation plus sends — the *send/receive atomicity* of Burman–Kutten;
//! * every undirected network edge is a pair of reliable **FIFO channels**;
//! * the **scheduler** (daemon) chooses which enabled step runs next;
//!   [`Scheduler::Synchronous`] delivers in lockstep,
//!   [`Scheduler::RandomAsync`] explores random fair interleavings, and
//!   [`Scheduler::Adversarial`] is a deterministic unfair-within-rounds
//!   daemon — all seeded and reproducible;
//! * a **round** is the standard complexity unit: the minimal period in
//!   which every node takes at least one step and every message present at
//!   the start of the round is delivered. The paper's `O(m n² log n)` bound
//!   is in these rounds;
//! * **transient faults** ([`faults`]) corrupt node state and channel
//!   contents arbitrarily — the adversary self-stabilization is defined
//!   against (Definition 1);
//! * **dynamic topology** ([`faults::ChurnEvent`], [`Network::remove_edge`]
//!   and friends): edges appear and disappear, nodes crash and rejoin,
//!   partitions form and heal — the churn regime under which
//!   re-convergence is measured.
//!
//! The run loop is an **event-driven engine** over a **flat message
//! fabric** (see [`runner::Runner`] and [`network`]): every directed edge
//! owns a dense channel *slot* taken from the graph's CSR view, per-round
//! obligations are derived from two incremental O(1)-transition indices —
//! an enabled-tick set maintained via dirty flags on node state, and a
//! swap-remove channel occupancy list — instead of per-round
//! `O(n + #channels)` rescans, and the steady-state round loop performs no
//! ordered-tree operations and no heap allocations. All three daemons stay
//! bit-for-bit deterministic per seed.
//!
//! The crate is generic over the protocol: the MDST protocol lives in
//! `ssmdst-core`, and the simulator only sees [`Automaton`] + [`Message`]
//! (a small reference protocol, the self-stabilizing [`protocols::FloodEcho`]
//! minimum flood, ships in-crate).
//!
//! **Driving a run**: the composable surface is [`Session`] — a fluent
//! builder over network + scheduler + horizon + planned churn — with
//! cross-cutting machinery (digests, traces, metrics probes, stop
//! conditions) attached as statically-dispatched [`Observer`]s; the unit
//! observer costs nothing, so the zero-alloc steady state survives a
//! `Session<A, ()>`. The [`Runner`] remains the low-level round engine
//! underneath. Convergence detection lives in one named predicate,
//! [`stop::QuiescenceGate`], shared by every driver.

// Library code must not grow bare `.unwrap()`s: use `.expect` with the
// invariant that makes failure unreachable (ssmdst-lint R4 audits the
// reasons). Unit tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod automaton;
pub mod backend;
pub(crate) mod dense;
pub(crate) mod events;
pub mod faults;
pub mod metrics;
pub mod network;
pub mod observer;
pub mod parallel;
pub mod protocols;
pub mod runner;
pub mod scheduler;
pub mod session;
pub(crate) mod shard;
pub mod stop;
pub mod trace;

pub use automaton::{Automaton, Message, Outbox};
pub use backend::Backend;
pub use faults::{ChurnEvent, Corrupt, TopologyPlan};
pub use metrics::{log2_bucket, KindStats, Metrics};
pub use network::Network;
pub use observer::{
    observe_rounds, stop_when, EveryRound, MetricsTrace, Observer, PhaseLog, RoundTrace,
    ScheduleDigest, Stop, StopWhen,
};
pub use runner::{quiet_window, RunOutcome, Runner, StopReason};
pub use scheduler::{Action, Scheduler};
pub use session::{Session, SessionBuilder};
pub use stop::QuiescenceGate;
pub use trace::{ChangeSeries, Digest, RunTrace, StabilityWindow, TraceRecord};

/// Node identifier; dense indices `0..n` matching `ssmdst_graph::NodeId`.
pub type NodeId = u32;
