//! Protocol-facing traits: [`Automaton`], [`Message`] and the [`Outbox`].
//!
//! An automaton models one processor. The simulator drives it through
//! exactly two entry points, matching the send/receive atomicity of the
//! paper's model: a spontaneous [`Automaton::tick`] (the "do forever: send
//! InfoMsg" loop head) and a [`Automaton::receive`] of a single message.
//! Both may enqueue sends into the [`Outbox`]; the simulator moves them into
//! FIFO channels after the step completes, making each step atomic.

use crate::NodeId;

/// A protocol message. `kind`/`size_bits` feed the metrics used by the
/// message-complexity and buffer-length experiments (paper §5 claims
/// `O(n log n)` maximal message length).
///
/// Messages are `Send`: the sharded backend ships staged channel contents
/// to worker threads, so a message may be delivered on a different OS
/// thread than the one that sent it. Protocol messages are plain data
/// (ids, weights, small vectors), so this costs nothing in practice.
pub trait Message: Clone + std::fmt::Debug + Send {
    /// Stable label for per-kind accounting ("InfoMsg", "Search", ...).
    fn kind(&self) -> &'static str;

    /// Serialized size in bits under the paper's encoding assumptions
    /// (IDs and integers take `⌈log₂ n⌉` bits).
    fn size_bits(&self, n: usize) -> usize;
}

/// One processor's state machine.
///
/// Implementations must be deterministic functions of (state, input): all
/// nondeterminism lives in the scheduler, which is what makes executions
/// reproducible and shrinkable in property tests.
///
/// Automata are `Send`: the sharded backend executes contiguous node
/// ranges on worker threads (each node is still only ever touched by one
/// thread at a time, so `Sync` is not required).
pub trait Automaton: Send {
    /// Message alphabet of the protocol.
    type Msg: Message;

    /// One spontaneous atomic step — the head of the paper's `Do forever`
    /// loop (Figure 2, line 1). Called at least once per round.
    fn tick(&mut self, out: &mut Outbox<Self::Msg>);

    /// One receive atomic step: consume `msg` from the FIFO channel
    /// `from → self`, update local state, enqueue sends.
    fn receive(&mut self, from: NodeId, msg: Self::Msg, out: &mut Outbox<Self::Msg>);

    /// Whether the node currently has an enabled spontaneous step. The
    /// event-driven runner keeps an incremental index of enabled ticks and
    /// re-evaluates this predicate only for nodes whose state changed since
    /// the last round (dirty flags), so implementations must derive the
    /// answer purely from local state. The default — always enabled —
    /// matches the paper's `Do forever` loop, which never terminates.
    fn enabled(&self) -> bool {
        true
    }

    /// Topology-change hook: called by the network after this node's
    /// neighbor set changes (edge churn, a neighbor crashing or rejoining).
    /// `neighbors` is the new sorted neighbor list. Implementations should
    /// refresh any captured neighbor state; the default ignores the event,
    /// which is only safe for automata that never send (stale sends after
    /// churn are dropped and counted, not delivered).
    fn on_topology_change(&mut self, _neighbors: &[NodeId]) {}
}

/// Send buffer for a single atomic step.
///
/// Messages are delivered in the order enqueued (per destination, FIFO with
/// everything previously in that channel).
#[derive(Debug)]
pub struct Outbox<M> {
    msgs: Vec<(NodeId, M)>,
}

impl<M> Outbox<M> {
    /// Fresh empty outbox (one per atomic step).
    pub fn new() -> Self {
        Outbox { msgs: Vec::new() }
    }

    /// Enqueue `msg` for neighbor `to`.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.msgs.push((to, msg));
    }

    /// Number of messages staged in this step.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether nothing has been sent.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Inspect staged messages without consuming them (useful for unit
    /// tests of protocol handlers).
    pub fn messages(&self) -> &[(NodeId, M)] {
        &self.msgs
    }

    /// Drain staged messages (simulator-internal).
    pub(crate) fn drain(&mut self) -> std::vec::Drain<'_, (NodeId, M)> {
        self.msgs.drain(..)
    }
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Ping(u32);

    impl Message for Ping {
        fn kind(&self) -> &'static str {
            "Ping"
        }
        fn size_bits(&self, n: usize) -> usize {
            usize::BITS as usize - (n.max(2) - 1).leading_zeros() as usize
        }
    }

    #[test]
    fn outbox_collects_in_order() {
        let mut out = Outbox::new();
        assert!(out.is_empty());
        out.send(3, Ping(1));
        out.send(1, Ping(2));
        assert_eq!(out.len(), 2);
        let drained: Vec<_> = out.drain().collect();
        assert_eq!(drained, vec![(3, Ping(1)), (1, Ping(2))]);
        assert!(out.is_empty());
    }

    #[test]
    fn message_size_is_log_n() {
        let p = Ping(0);
        assert_eq!(p.size_bits(16), 4);
        assert_eq!(p.size_bits(1024), 10);
    }
}
