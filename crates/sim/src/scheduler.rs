//! Schedulers (daemons): who takes the next atomic step.
//!
//! Self-stabilization proofs quantify over *all* fair executions; the
//! simulator approximates that space with three daemons. All are
//! deterministic given their seed, so any failing execution can be replayed.

use rand::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Daemon selecting among enabled atomic steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Lockstep: every round, all nodes tick in id order, then all messages
    /// present at the start of the round are delivered in deterministic
    /// channel order. The fastest executions; used for large sweeps.
    Synchronous,
    /// Uniformly random fair interleaving: within each round the set of
    /// obligations (every node ticks once, every message present at round
    /// start is delivered) is discharged in a random order, interleaved with
    /// deliveries of newly sent messages.
    RandomAsync { seed: u64 },
    /// Deterministic unfair-within-round daemon: obligations are discharged
    /// in an order keyed by a seeded hash, consistently favoring some
    /// channels and starving others as long as fairness permits. Stresses
    /// the protocol's tolerance to skewed relative speeds.
    Adversarial { seed: u64 },
}

/// An enabled atomic step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Action {
    /// Spontaneous step at a node.
    Tick(u32),
    /// Deliver the head of channel `(from, to)`.
    Deliver(u32, u32),
}

/// Round-scoped action picker: the runner constructs one per run and asks it
/// to order each round's obligations.
pub(crate) struct Picker {
    sched: Scheduler,
    rng: Option<StdRng>,
}

impl Picker {
    pub(crate) fn new(sched: Scheduler) -> Self {
        let rng = match sched {
            Scheduler::RandomAsync { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        Picker { sched, rng }
    }

    /// Order this round's obligations. The runner executes them left to
    /// right (re-checking enabledness, since earlier actions can consume or
    /// create messages).
    pub(crate) fn order(&mut self, round: u64, mut obligations: Vec<Action>) -> Vec<Action> {
        match self.sched {
            Scheduler::Synchronous => {
                // Ticks first (id order), then deliveries in channel order —
                // classic synchronous round.
                obligations.sort_unstable_by_key(|a| match *a {
                    Action::Tick(v) => (0u8, v, 0),
                    Action::Deliver(f, t) => (1u8, f, t),
                });
                obligations
            }
            Scheduler::RandomAsync { .. } => {
                let rng = self.rng.as_mut().expect("random daemon has rng");
                obligations.shuffle(rng);
                obligations
            }
            Scheduler::Adversarial { seed } => {
                // Stable, seed-keyed priority: the same channels are always
                // served last, emulating consistently slow links.
                obligations.sort_unstable_by_key(|a| hash_action(seed, round, a));
                obligations
            }
        }
    }
}

/// Deterministic 64-bit mix for the adversarial daemon (splitmix64 core).
fn hash_action(seed: u64, round: u64, a: &Action) -> u64 {
    let x = match *a {
        Action::Tick(v) => (v as u64) << 1,
        Action::Deliver(f, t) => ((f as u64) << 33) | ((t as u64) << 1) | 1,
    };
    // Round enters with a small weight so priorities are sticky across
    // rounds but not frozen forever.
    let mut z = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (round / 16);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obligations() -> Vec<Action> {
        vec![
            Action::Deliver(1, 0),
            Action::Tick(2),
            Action::Tick(0),
            Action::Deliver(0, 1),
        ]
    }

    #[test]
    fn synchronous_orders_ticks_first_then_channels() {
        let mut p = Picker::new(Scheduler::Synchronous);
        let ordered = p.order(0, obligations());
        assert_eq!(
            ordered,
            vec![
                Action::Tick(0),
                Action::Tick(2),
                Action::Deliver(0, 1),
                Action::Deliver(1, 0),
            ]
        );
    }

    #[test]
    fn random_async_is_seed_deterministic() {
        let mut a = Picker::new(Scheduler::RandomAsync { seed: 5 });
        let mut b = Picker::new(Scheduler::RandomAsync { seed: 5 });
        assert_eq!(a.order(0, obligations()), b.order(0, obligations()));
    }

    #[test]
    fn random_async_differs_across_seeds_eventually() {
        // With 4 obligations a single-seed collision is possible; check over
        // several rounds.
        let mut a = Picker::new(Scheduler::RandomAsync { seed: 1 });
        let mut b = Picker::new(Scheduler::RandomAsync { seed: 2 });
        let same = (0..10).all(|r| a.order(r, obligations()) == b.order(r, obligations()));
        assert!(!same);
    }

    #[test]
    fn adversarial_is_deterministic_and_sticky() {
        let mut a = Picker::new(Scheduler::Adversarial { seed: 9 });
        let mut b = Picker::new(Scheduler::Adversarial { seed: 9 });
        // Same order for the same round...
        assert_eq!(a.order(3, obligations()), b.order(3, obligations()));
        // ...and sticky across adjacent rounds (division by 16 in the hash).
        assert_eq!(a.order(4, obligations()), b.order(5, obligations()));
    }
}
