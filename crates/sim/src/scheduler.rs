//! Schedulers (daemons): who takes the next atomic step.
//!
//! Self-stabilization proofs quantify over *all* fair executions; the
//! simulator approximates that space with three daemons. All are
//! deterministic given their seed, so any failing execution can be replayed.
//!
//! Since the event-driven engine landed, a daemon is expressed as a **key
//! source**: each pending event gets a priority key and the engine executes
//! events in ascending `(key, enumeration index)` order. This keeps the
//! per-event cost logarithmic while preserving the exact semantics of the
//! old sort-the-whole-round pickers:
//!
//! * [`Scheduler::Synchronous`] keys ticks before deliveries, each in id /
//!   channel order — the classic lockstep round;
//! * [`Scheduler::RandomAsync`] draws one `u64` per event from a seeded
//!   [`StdRng`]; ordering by independent uniform keys is a uniformly random
//!   permutation of the round's obligations;
//! * [`Scheduler::Adversarial`] keys by a seeded hash that is sticky across
//!   rounds, consistently favoring some channels and starving others as
//!   long as fairness permits.

use rand::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Daemon selecting among enabled atomic steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Lockstep: every round, all nodes tick in id order, then all messages
    /// present at the start of the round are delivered in deterministic
    /// channel order. The fastest executions; used for large sweeps.
    Synchronous,
    /// Uniformly random fair interleaving: within each round the set of
    /// obligations (every enabled node ticks once, every message present at
    /// round start is delivered) is discharged in a random order.
    RandomAsync { seed: u64 },
    /// Deterministic unfair-within-round daemon: obligations are discharged
    /// in an order keyed by a seeded hash, consistently favoring some
    /// channels and starving others as long as fairness permits. Stresses
    /// the protocol's tolerance to skewed relative speeds.
    Adversarial { seed: u64 },
}

/// An enabled atomic step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Action {
    /// Spontaneous step at a node.
    Tick(u32),
    /// Deliver the head of channel `(from, to)`.
    Deliver(u32, u32),
}

/// Per-run priority-key source: the runner constructs one per run and asks
/// it for one key per pending event. Events run in ascending key order,
/// ties broken by enumeration order (ticks in id order first, then channel
/// deliveries in channel order), which makes every daemon a total,
/// reproducible order.
pub(crate) struct KeySource {
    sched: Scheduler,
    rng: Option<StdRng>,
}

impl KeySource {
    pub(crate) fn new(sched: Scheduler) -> Self {
        let rng = match sched {
            Scheduler::RandomAsync { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        KeySource { sched, rng }
    }

    /// Priority key for one pending event of round `round`. For
    /// `RandomAsync` this consumes one value from the seeded stream, so the
    /// caller must request keys in the canonical enumeration order.
    pub(crate) fn key(&mut self, round: u64, a: &Action) -> u128 {
        match self.sched {
            Scheduler::Synchronous => match *a {
                // Ticks strictly before deliveries, each in natural order.
                Action::Tick(v) => v as u128,
                Action::Deliver(f, t) => (1u128 << 96) | ((f as u128) << 32) | t as u128,
            },
            Scheduler::RandomAsync { .. } => {
                let rng = self.rng.as_mut().expect("random daemon has rng"); // lint: allow(no-panic-in-library) — KeySource::new seeds rng whenever the daemon is RandomAsync
                rng.random::<u64>() as u128
            }
            Scheduler::Adversarial { seed } => hash_action(seed, round, a) as u128,
        }
    }
}

/// Deterministic 64-bit mix for the adversarial daemon (splitmix64 core).
fn hash_action(seed: u64, round: u64, a: &Action) -> u64 {
    let x = match *a {
        Action::Tick(v) => (v as u64) << 1,
        Action::Deliver(f, t) => ((f as u64) << 33) | ((t as u64) << 1) | 1,
    };
    // Round enters with a small weight so priorities are sticky across
    // rounds but not frozen forever.
    let mut z = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (round / 16);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obligations() -> Vec<Action> {
        vec![
            Action::Deliver(1, 0),
            Action::Tick(2),
            Action::Tick(0),
            Action::Deliver(0, 1),
        ]
    }

    /// Order a round's obligations the way the engine does: ascending
    /// (key, enumeration index).
    fn order(ks: &mut KeySource, round: u64, obligations: Vec<Action>) -> Vec<Action> {
        let mut keyed: Vec<(u128, usize, Action)> = obligations
            .into_iter()
            .enumerate()
            .map(|(i, a)| (ks.key(round, &a), i, a))
            .collect();
        keyed.sort_unstable_by_key(|e| (e.0, e.1));
        keyed.into_iter().map(|(_, _, a)| a).collect()
    }

    #[test]
    fn synchronous_orders_ticks_first_then_channels() {
        let mut ks = KeySource::new(Scheduler::Synchronous);
        let ordered = order(&mut ks, 0, obligations());
        assert_eq!(
            ordered,
            vec![
                Action::Tick(0),
                Action::Tick(2),
                Action::Deliver(0, 1),
                Action::Deliver(1, 0),
            ]
        );
    }

    #[test]
    fn random_async_is_seed_deterministic() {
        let mut a = KeySource::new(Scheduler::RandomAsync { seed: 5 });
        let mut b = KeySource::new(Scheduler::RandomAsync { seed: 5 });
        assert_eq!(
            order(&mut a, 0, obligations()),
            order(&mut b, 0, obligations())
        );
    }

    #[test]
    fn random_async_differs_across_seeds_eventually() {
        // With 4 obligations a single-round collision is possible; check
        // over several rounds.
        let mut a = KeySource::new(Scheduler::RandomAsync { seed: 1 });
        let mut b = KeySource::new(Scheduler::RandomAsync { seed: 2 });
        let same =
            (0..10).all(|r| order(&mut a, r, obligations()) == order(&mut b, r, obligations()));
        assert!(!same);
    }

    #[test]
    fn adversarial_is_deterministic_and_sticky() {
        let mut a = KeySource::new(Scheduler::Adversarial { seed: 9 });
        let mut b = KeySource::new(Scheduler::Adversarial { seed: 9 });
        // Same order for the same round...
        assert_eq!(
            order(&mut a, 3, obligations()),
            order(&mut b, 3, obligations())
        );
        // ...and sticky across adjacent rounds (division by 16 in the hash).
        assert_eq!(
            order(&mut a, 4, obligations()),
            order(&mut b, 5, obligations())
        );
    }

    #[test]
    fn synchronous_keys_are_pure() {
        // Synchronous keys depend only on the action, never on round or
        // call order — the lockstep order is frozen forever.
        let mut ks = KeySource::new(Scheduler::Synchronous);
        let k1 = ks.key(0, &Action::Deliver(3, 4));
        let k2 = ks.key(17, &Action::Deliver(3, 4));
        assert_eq!(k1, k2);
        assert!(ks.key(0, &Action::Tick(u32::MAX)) < ks.key(0, &Action::Deliver(0, 0)));
    }
}
