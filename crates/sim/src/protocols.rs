//! Small reference protocols shipped with the simulator.
//!
//! Promoted from the test-suite's ad-hoc automata so non-MDST workloads
//! are first-class: anything here runs through the same
//! [`crate::Session`] + [`crate::Observer`] drivers, the scenario
//! engine, campaigns, replay and shrinking that the MDST protocol uses —
//! which is the point: the execution stack is protocol-generic end to
//! end.
//!
//! The flagship resident is [`FloodEcho`], a **self-stabilizing minimum
//! flood / leader election**: every node continuously advertises the
//! smallest live id it believes reaches it, as a distance-stamped claim
//! recomputed each step from fresh neighbor advertisements — never
//! latched. Claims whose hop count reaches the network size are
//! discarded, so *ghost minima* (corrupted claims for ids that no live
//! node sources, the failure mode of the naive latched min-flood in the
//! test suites) age out within `O(n)` rounds. It doubles as a stress
//! workload whose traffic pattern — all-neighbor floods plus targeted
//! echoes — is nothing like the MDST protocol's.

#![warn(missing_docs)]

use crate::automaton::{Automaton, Message, Outbox};
use crate::faults::Corrupt;
use crate::NodeId;
use rand::rngs::StdRng;
use rand::RngCore;

/// A distance-stamped minimum claim: "id `value` is reachable `dist` hops
/// away". The protocol's entire per-neighbor state and message payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Claim {
    /// Claimed minimum id.
    pub value: u32,
    /// Hop distance to the claimed source.
    pub dist: u32,
}

impl Claim {
    /// The "no information" sentinel, worse than every real claim.
    pub const NONE: Claim = Claim {
        value: u32::MAX,
        dist: u32::MAX,
    };
}

/// Message alphabet of [`FloodEcho`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloodMsg {
    /// Periodic advertisement of the sender's current claim.
    Flood(Claim),
    /// Targeted correction sent back to a neighbor that advertised a
    /// larger value than the responder currently claims.
    Echo(Claim),
}

impl Message for FloodMsg {
    fn kind(&self) -> &'static str {
        match self {
            FloodMsg::Flood(_) => "Flood",
            FloodMsg::Echo(_) => "Echo",
        }
    }
    fn size_bits(&self, n: usize) -> usize {
        // One id, one hop count, one tag bit under the paper's ⌈log₂ n⌉
        // encoding.
        1 + 2 * (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize
    }
}

/// Self-stabilizing minimum flood with echo acceleration.
///
/// Each node mirrors every neighbor's last advertised [`Claim`] and
/// recomputes its own claim on every spontaneous step as the best of
/// `(own id, 0)` and `(mirror.value, mirror.dist + 1)` over all mirrors,
/// **discarding any candidate whose distance reaches the hop bound**
/// (the network size). The claim is derived, never latched, so:
///
/// * corruption *above* the true minimum is overwritten by the next wave
///   of fresh advertisements;
/// * corruption *below* the true minimum — a ghost id with no live source
///   — has no node at distance 0 sourcing it, so its minimum claimed
///   distance grows every refresh until it hits the bound and vanishes.
///
/// Both together give convergence from arbitrary configurations to
/// "every node claims its component's minimum live id": leader election,
/// the hello-world of self-stabilization, under the exact send/receive
/// atomic-step model the MDST protocol uses.
#[derive(Debug, Clone)]
pub struct FloodEcho {
    id: NodeId,
    /// Hop bound: claims at this distance are discarded (set to `n`).
    bound: u32,
    claim: Claim,
    neighbors: Vec<NodeId>,
    /// `mirror[i]` is the last claim heard from `neighbors[i]`.
    mirror: Vec<Claim>,
    /// Echoes received — a liveness counter exercised by metrics probes.
    echoes: u64,
}

impl FloodEcho {
    /// Fresh node: claims itself until advertisements arrive. `bound` is
    /// the ghost-flush hop bound, normally the network size `n`.
    pub fn new(id: NodeId, neighbors: &[NodeId], bound: u32) -> Self {
        FloodEcho {
            id,
            bound,
            claim: Claim { value: id, dist: 0 },
            neighbors: neighbors.to_vec(),
            mirror: vec![Claim::NONE; neighbors.len()],
            echoes: 0,
        }
    }

    /// The node's current minimum estimate.
    pub fn value(&self) -> u32 {
        self.claim.value
    }

    /// The node's full current claim.
    pub fn claim(&self) -> Claim {
        self.claim
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Echo messages received so far.
    pub fn echoes(&self) -> u64 {
        self.echoes
    }

    fn recompute(&mut self) {
        let mut best = Claim {
            value: self.id,
            dist: 0,
        };
        for m in &self.mirror {
            let Some(d) = m.dist.checked_add(1) else {
                continue;
            };
            if d >= self.bound {
                continue; // ghost flush: too far to be real
            }
            if m.value < best.value || (m.value == best.value && d < best.dist) {
                best = Claim {
                    value: m.value,
                    dist: d,
                };
            }
        }
        self.claim = best;
    }

    fn learn(&mut self, from: NodeId, heard: Claim) {
        if let Ok(i) = self.neighbors.binary_search(&from) {
            self.mirror[i] = heard;
        }
        self.recompute();
    }
}

impl Automaton for FloodEcho {
    type Msg = FloodMsg;

    fn tick(&mut self, out: &mut Outbox<FloodMsg>) {
        self.recompute();
        for &w in &self.neighbors {
            out.send(w, FloodMsg::Flood(self.claim));
        }
    }

    fn receive(&mut self, from: NodeId, msg: FloodMsg, out: &mut Outbox<FloodMsg>) {
        match msg {
            FloodMsg::Flood(c) => {
                self.learn(from, c);
                if c.value > self.claim.value {
                    out.send(from, FloodMsg::Echo(self.claim));
                }
            }
            FloodMsg::Echo(c) => {
                self.echoes = self.echoes.wrapping_add(1);
                self.learn(from, c);
            }
        }
    }

    fn on_topology_change(&mut self, neighbors: &[NodeId]) {
        // Keep mirrors for surviving neighbors; new neighbors start
        // unknown, so no claim survives an edge swap unexamined.
        let mut mirror = vec![Claim::NONE; neighbors.len()];
        for (i, &w) in neighbors.iter().enumerate() {
            if let Ok(old) = self.neighbors.binary_search(&w) {
                mirror[i] = self.mirror[old];
            }
        }
        self.neighbors = neighbors.to_vec();
        self.mirror = mirror;
        self.recompute();
    }
}

impl Corrupt for FloodEcho {
    fn corrupt(&mut self, rng: &mut StdRng) {
        // Arbitrary garbage everywhere the adversary can reach: the claim
        // (including impossibly small ghost values at short distances),
        // every mirror, the counter. The id, hop bound and neighbor list
        // are the node's identity/topology, which the transient-fault
        // model leaves intact.
        self.claim = Claim {
            value: rng.next_u32(),
            dist: rng.next_u32() % self.bound.max(1),
        };
        for m in &mut self.mirror {
            *m = Claim {
                value: rng.next_u32(),
                dist: rng.next_u32() % self.bound.max(1),
            };
        }
        self.echoes = rng.next_u64();
    }
}

/// Build a [`FloodEcho`] network over `g` — the one-liner the scenario
/// registry and the examples use.
pub fn flood_network(g: &ssmdst_graph::Graph) -> crate::Network<FloodEcho> {
    let bound = g.n() as u32;
    crate::Network::from_graph(g, |v, nbrs| FloodEcho::new(v, nbrs, bound))
}

/// Canonical quiescence projection for [`FloodEcho`]: every live node's
/// current claim (crashed nodes report [`Claim::NONE`] so rejoins perturb
/// the projection and re-arm quiescence detection).
pub fn flood_projection(net: &crate::Network<FloodEcho>) -> Vec<Claim> {
    (0..net.n() as NodeId)
        .map(|v| {
            if net.is_alive(v) {
                net.node(v).claim()
            } else {
                Claim::NONE
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::{Scheduler, Session};
    use ssmdst_graph::generators::structured::{cycle, path};

    fn values(net: &crate::Network<FloodEcho>) -> Vec<u32> {
        net.nodes().iter().map(|n| n.value()).collect()
    }

    #[test]
    fn converges_to_global_minimum_under_every_daemon() {
        for sched in [
            Scheduler::Synchronous,
            Scheduler::RandomAsync { seed: 3 },
            Scheduler::Adversarial { seed: 3 },
        ] {
            let g = cycle(9).unwrap();
            let mut session = Session::from_network(flood_network(&g))
                .scheduler(sched)
                .horizon(2_000)
                .build();
            let out = session.run_to_quiescence(32, flood_projection);
            assert!(out.converged(), "{sched:?}");
            assert!(values(session.network()).iter().all(|&v| v == 0));
        }
    }

    /// The self-stabilization property the latched test-suite flood does
    /// NOT have: ghost minima — corrupted claims below every live id —
    /// age out through the distance bound instead of circulating forever.
    #[test]
    fn recovers_from_arbitrary_corruption() {
        let g = path(8).unwrap();
        let mut session = Session::from_network(flood_network(&g))
            .scheduler(Scheduler::RandomAsync { seed: 11 })
            .horizon(5_000)
            .build();
        let out = session.run_to_quiescence(32, flood_projection);
        assert!(out.converged());
        for seed in 0..5 {
            let _ = session.inject(FaultPlan::total(seed));
            let out = session.run_to_quiescence(32, flood_projection);
            assert!(out.converged(), "seed {seed}: no recovery");
            assert!(
                values(session.network()).iter().all(|&v| v == 0),
                "seed {seed}: stale corrupted minimum survived: {:?}",
                values(session.network())
            );
        }
    }

    /// Crashing the elected minimum is the acid test: its claim is a
    /// ghost the instant the node dies, and must be flushed so the
    /// survivors re-elect. Rejoining restores it.
    #[test]
    fn reelects_after_crash_and_rejoin() {
        let g = cycle(6).unwrap();
        let mut session = Session::from_network(flood_network(&g))
            .scheduler(Scheduler::Synchronous)
            .horizon(2_000)
            .build();
        let out = session.run_to_quiescence(32, flood_projection);
        assert!(out.converged());
        let _ = session.churn(&crate::ChurnEvent::CrashNode(0));
        let out = session.run_to_quiescence(32, flood_projection);
        assert!(out.converged());
        let live: Vec<u32> = (1..6).map(|v| session.network().node(v).value()).collect();
        assert!(live.iter().all(|&v| v == 1), "new minimum: {live:?}");
        let _ = session.churn(&crate::ChurnEvent::RejoinNode(0));
        let out = session.run_to_quiescence(32, flood_projection);
        assert!(out.converged());
        assert!(values(session.network()).iter().all(|&v| v == 0));
    }

    #[test]
    fn echoes_flow_and_are_counted() {
        let g = path(5).unwrap();
        let mut session = Session::from_network(flood_network(&g))
            .scheduler(Scheduler::Synchronous)
            .horizon(200)
            .build();
        let _ = session.run_to_quiescence(8, flood_projection);
        let echoed: u64 = session.network().nodes().iter().map(|n| n.echoes()).sum();
        assert!(echoed > 0, "echo fast path never fired");
        assert!(session.network().metrics.kind("Echo").sent > 0);
        assert!(session.network().metrics.kind("Flood").sent > 0);
    }
}
