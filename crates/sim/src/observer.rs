//! The composable [`Observer`] trait: cross-cutting run machinery as
//! plug-in values.
//!
//! Everything the drivers used to hand-roll around the round loop —
//! schedule digests, trace recording, metrics probes, stop conditions —
//! is expressed as an [`Observer`] hooked into [`crate::Session`] (or
//! directly into [`crate::Runner::step_round_observed`]). Observers
//! compose **statically**: the tuple `(O1, O2)` is itself an observer
//! that fans every hook out to both members, so any number of concerns
//! stack without boxing, without dynamic dispatch, and — because every
//! hook of the unit observer `()` is an empty inlineable default —
//! without costing the zero-allocation steady-state round loop anything
//! when nothing is attached (`tests/zero_alloc.rs` pins this).
//!
//! Ordering contract: observers never perturb the execution. All hooks
//! take the network immutably; two runs of the same seeded network are
//! bit-identical whether zero, one, or ten observers are attached, and
//! regardless of composition order. The observer-composition test fences
//! this: `(Trace, Digest, Metrics)` in any order yields byte-identical
//! digests.

#![warn(missing_docs)]

use crate::automaton::Automaton;
use crate::faults::ChurnEvent;
use crate::network::Network;
use crate::scheduler::Action;
use crate::trace::Digest;

/// An observer's verdict after a round: keep going or stop the run.
///
/// Returned by [`Observer::on_round_end`]; any composed observer
/// answering [`Stop::Done`] ends the enclosing [`crate::Session::run`]
/// (the outcome reports [`crate::StopReason::Converged`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub enum Stop {
    /// Keep running.
    Continue,
    /// Stop the run after this round.
    Done,
}

impl Stop {
    /// Combine two verdicts: stop if either side wants to stop.
    pub fn or(self, other: Stop) -> Stop {
        if self == Stop::Done || other == Stop::Done {
            Stop::Done
        } else {
            Stop::Continue
        }
    }

    /// Whether this verdict ends the run.
    pub fn is_done(self) -> bool {
        self == Stop::Done
    }
}

/// Hooks into the simulation loop. All methods default to no-ops (and
/// [`Stop::Continue`]), so an observer implements only what it needs.
///
/// * [`on_round_start`](Observer::on_round_start) — before a round's
///   obligations are derived;
/// * [`on_event`](Observer::on_event) — once per scheduled event of the
///   round, in execution order, *before* the batch executes (this is the
///   record-replay witness stream: key, enumeration index, action);
/// * [`on_round_end`](Observer::on_round_end) — after the round executed,
///   with the post-round network and the completed-round count; returns
///   the stop decision;
/// * [`on_phase`](Observer::on_phase) — at driver-defined phase
///   boundaries (scenario events, planned churn), with a rendered label.
pub trait Observer<A: Automaton> {
    /// Called before the round's obligations are derived.
    fn on_round_start(&mut self, _net: &Network<A>, _round: u64) {}

    /// Called for every scheduled event of the round, in execution order,
    /// before the batch executes. `key` is the daemon priority key, `idx`
    /// the canonical enumeration index (the total-order tie-break).
    fn on_event(&mut self, _key: u128, _idx: u32, _action: Action) {}

    /// Called after the round executed; `round` is the number of completed
    /// rounds. Return [`Stop::Done`] to end the enclosing run.
    fn on_round_end(&mut self, _net: &Network<A>, _round: u64) -> Stop {
        Stop::Continue
    }

    /// Called at driver-defined phase boundaries (e.g. a scenario event or
    /// a planned churn application) with a rendered label.
    fn on_phase(&mut self, _net: &Network<A>, _label: &str, _round: u64) {}

    /// Called after a topology-churn event was applied ([`crate::Session::churn`]
    /// or a planned [`crate::SessionBuilder::churn_at`] firing), with the
    /// post-event network. This is the structured twin of the rendered
    /// [`on_phase`](Observer::on_phase) label — incremental machinery (e.g.
    /// a judge mirroring the live topology) keys off the event value.
    fn on_churn(&mut self, _net: &Network<A>, _ev: &ChurnEvent, _round: u64) {}
}

/// The unit observer: observes nothing, never stops the run. Attaching it
/// costs nothing — every hook is an empty default the compiler erases.
impl<A: Automaton> Observer<A> for () {}

/// Pair combinator: fans every hook out to both members (left first) and
/// stops when *either* member answers [`Stop::Done`]. Nest pairs for any
/// arity: `((a, b), c)`. Both members always see every hook — the stop
/// decision is not short-circuited, so bookkeeping observers stay
/// consistent even when a sibling ends the run.
impl<A: Automaton, O1: Observer<A>, O2: Observer<A>> Observer<A> for (O1, O2) {
    fn on_round_start(&mut self, net: &Network<A>, round: u64) {
        self.0.on_round_start(net, round);
        self.1.on_round_start(net, round);
    }
    fn on_event(&mut self, key: u128, idx: u32, action: Action) {
        self.0.on_event(key, idx, action);
        self.1.on_event(key, idx, action);
    }
    fn on_round_end(&mut self, net: &Network<A>, round: u64) -> Stop {
        let a = self.0.on_round_end(net, round);
        let b = self.1.on_round_end(net, round);
        a.or(b)
    }
    fn on_phase(&mut self, net: &Network<A>, label: &str, round: u64) {
        self.0.on_phase(net, label, round);
        self.1.on_phase(net, label, round);
    }
    fn on_churn(&mut self, net: &Network<A>, ev: &ChurnEvent, round: u64) {
        self.0.on_churn(net, ev, round);
        self.1.on_churn(net, ev, round);
    }
}

/// Borrowed observers observe too — lets a driver compose a transient
/// stop condition with a session-owned observer for one call.
impl<A: Automaton, O: Observer<A>> Observer<A> for &mut O {
    fn on_round_start(&mut self, net: &Network<A>, round: u64) {
        (**self).on_round_start(net, round);
    }
    fn on_event(&mut self, key: u128, idx: u32, action: Action) {
        (**self).on_event(key, idx, action);
    }
    fn on_round_end(&mut self, net: &Network<A>, round: u64) -> Stop {
        (**self).on_round_end(net, round)
    }
    fn on_phase(&mut self, net: &Network<A>, label: &str, round: u64) {
        (**self).on_phase(net, label, round);
    }
    fn on_churn(&mut self, net: &Network<A>, ev: &ChurnEvent, round: u64) {
        (**self).on_churn(net, ev, round);
    }
}

/// Fold one scheduled event into a digest — the canonical encoding of the
/// record-replay witness stream (priority key, enumeration index, action
/// tag and operands). [`ScheduleDigest`] and
/// [`crate::Runner::step_round_digest`] share this function, so the two
/// paths are byte-identical by construction.
pub fn fold_event(digest: &mut Digest, key: u128, idx: u32, action: Action) {
    digest.write_u128(key);
    digest.write_u32(idx);
    match action {
        Action::Tick(v) => {
            digest.write_u32(0);
            digest.write_u32(v);
        }
        Action::Deliver(from, to) => {
            digest.write_u32(1);
            digest.write_u32(from);
            digest.write_u32(to);
        }
    }
}

/// Observer that folds every scheduled event into a chained [`Digest`] —
/// the *schedule witness*: two runs whose values agree executed the
/// identical schedule. This is the observer form of
/// [`crate::Runner::step_round_digest`].
#[derive(Debug, Clone, Default)]
pub struct ScheduleDigest {
    digest: Digest,
}

impl ScheduleDigest {
    /// Fresh digest (FNV-1a offset basis).
    pub fn new() -> Self {
        ScheduleDigest {
            digest: Digest::new(),
        }
    }

    /// Current chained value.
    pub fn value(&self) -> u64 {
        self.digest.value()
    }

    /// The underlying digest (e.g. to fold extra caller data).
    pub fn digest_mut(&mut self) -> &mut Digest {
        &mut self.digest
    }
}

impl<A: Automaton> Observer<A> for ScheduleDigest {
    fn on_event(&mut self, key: u128, idx: u32, action: Action) {
        fold_event(&mut self.digest, key, idx, action);
    }
}

/// Closure adapter: run `f` after every round (never stops the run). The
/// observer form of the old `run_until` side-effecting closures.
#[derive(Debug)]
pub struct EveryRound<F>(F);

/// Wrap a per-round callback as an observer.
pub fn observe_rounds<F>(f: F) -> EveryRound<F> {
    EveryRound(f)
}

impl<A: Automaton, F: FnMut(&Network<A>, u64)> Observer<A> for EveryRound<F> {
    fn on_round_end(&mut self, net: &Network<A>, round: u64) -> Stop {
        (self.0)(net, round);
        Stop::Continue
    }
}

/// Closure adapter: stop the run when `f` returns `true` — the observer
/// form of the old `Runner::run_until` predicate.
#[derive(Debug)]
pub struct StopWhen<F>(F);

/// Wrap a stop predicate as an observer.
pub fn stop_when<F>(f: F) -> StopWhen<F> {
    StopWhen(f)
}

impl<A: Automaton, F: FnMut(&Network<A>, u64) -> bool> Observer<A> for StopWhen<F> {
    fn on_round_end(&mut self, net: &Network<A>, round: u64) -> Stop {
        if (self.0)(net, round) {
            Stop::Done
        } else {
            Stop::Continue
        }
    }
}

/// Lightweight execution trace: one `(round, in_flight, delivered)`
/// sample per round. Cheap enough to attach everywhere; the composition
/// tests use it as the "trace" leg of `(Trace, Digest, Metrics)`.
#[derive(Debug, Clone, Default)]
pub struct RoundTrace {
    samples: Vec<(u64, usize, u64)>,
}

impl RoundTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recorded `(round, in_flight, total_delivered)` samples.
    pub fn samples(&self) -> &[(u64, usize, u64)] {
        &self.samples
    }
}

impl<A: Automaton> Observer<A> for RoundTrace {
    fn on_round_end(&mut self, net: &Network<A>, round: u64) -> Stop {
        self.samples
            .push((round, net.in_flight(), net.metrics.total_delivered));
        Stop::Continue
    }
}

/// Records every phase boundary announced by the driver: `(label, round)`
/// in order. The observer form of the scenario trace's topology/fault
/// records.
#[derive(Debug, Clone, Default)]
pub struct PhaseLog {
    seen: Vec<(String, u64)>,
}

impl PhaseLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recorded `(label, round)` phase boundaries, in order.
    pub fn seen(&self) -> &[(String, u64)] {
        &self.seen
    }
}

impl<A: Automaton> Observer<A> for PhaseLog {
    fn on_phase(&mut self, _net: &Network<A>, label: &str, round: u64) {
        self.seen.push((label.to_string(), round));
    }
}

/// Per-round snapshots of the cumulative send counter — the "metrics" leg
/// of the composition fence, and a building block for throughput plots.
#[derive(Debug, Clone, Default)]
pub struct MetricsTrace {
    sent: Vec<u64>,
}

impl MetricsTrace {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// `total_sent` after each observed round, in order.
    pub fn sent(&self) -> &[u64] {
        &self.sent
    }
}

impl<A: Automaton> Observer<A> for MetricsTrace {
    fn on_round_end(&mut self, net: &Network<A>, _round: u64) -> Stop {
        self.sent.push(net.metrics.total_sent);
        Stop::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{Message, Outbox};
    use crate::runner::Runner;
    use crate::scheduler::Scheduler;
    use crate::NodeId;

    #[derive(Debug, Clone)]
    struct Ping;
    impl Message for Ping {
        fn kind(&self) -> &'static str {
            "Ping"
        }
        fn size_bits(&self, _n: usize) -> usize {
            1
        }
    }

    #[derive(Debug)]
    struct Chat {
        neighbors: Vec<NodeId>,
        heard: u32,
    }
    impl Automaton for Chat {
        type Msg = Ping;
        fn tick(&mut self, out: &mut Outbox<Ping>) {
            for &w in &self.neighbors {
                out.send(w, Ping);
            }
        }
        fn receive(&mut self, _: NodeId, _: Ping, _: &mut Outbox<Ping>) {
            self.heard += 1;
        }
    }

    fn runner(sched: Scheduler) -> Runner<Chat> {
        let g = ssmdst_graph::generators::structured::path(6).unwrap();
        let net = Network::from_graph(&g, |_, nbrs| Chat {
            neighbors: nbrs.to_vec(),
            heard: 0,
        });
        Runner::new(net, sched)
    }

    #[test]
    fn stop_or_is_sticky() {
        assert_eq!(Stop::Continue.or(Stop::Continue), Stop::Continue);
        assert_eq!(Stop::Done.or(Stop::Continue), Stop::Done);
        assert_eq!(Stop::Continue.or(Stop::Done), Stop::Done);
        assert!(Stop::Done.is_done());
        assert!(!Stop::Continue.is_done());
    }

    /// `ScheduleDigest` as an observer reproduces `step_round_digest`
    /// byte for byte — the two paths share `fold_event`.
    #[test]
    fn schedule_digest_matches_step_round_digest() {
        for sched in [
            Scheduler::Synchronous,
            Scheduler::RandomAsync { seed: 7 },
            Scheduler::Adversarial { seed: 7 },
        ] {
            let mut legacy = crate::trace::Digest::new();
            let mut r1 = runner(sched);
            for _ in 0..20 {
                r1.step_round_digest(&mut legacy);
            }
            let mut obs = ScheduleDigest::new();
            let mut r2 = runner(sched);
            for _ in 0..20 {
                let _ = r2.step_round_observed(&mut obs);
            }
            assert_eq!(legacy.value(), obs.value(), "diverged under {sched:?}");
        }
    }

    /// Tuple composition fans hooks to both members and combines the stop
    /// decision without short-circuiting.
    #[test]
    fn pair_combinator_fans_out_and_stops() {
        let mut rounds_seen = 0u64;
        let mut r = runner(Scheduler::Synchronous);
        let out = {
            let mut obs = (
                observe_rounds(|_: &Network<Chat>, _| rounds_seen += 1),
                stop_when(|_: &Network<Chat>, round| round >= 3),
            );
            r.run_observed(100, &mut obs)
        };
        assert!(out.converged());
        assert_eq!(out.rounds, 3);
        assert_eq!(rounds_seen, 3, "left member saw every round");
    }

    /// Trace and metrics observers record once per round and never
    /// perturb the run.
    #[test]
    fn trace_and_metrics_observers_record_per_round() {
        let mut r = runner(Scheduler::Synchronous);
        let mut obs = (RoundTrace::new(), MetricsTrace::new());
        let _ = r.run_observed(5, &mut obs);
        let (trace, metrics) = obs;
        assert_eq!(trace.samples().len(), 5);
        assert_eq!(metrics.sent().len(), 5);
        assert_eq!(trace.samples()[0].0, 1, "rounds are 1-based counts");
        assert!(metrics.sent().windows(2).all(|w| w[0] <= w[1]));
        // Unobserved twin run is identical.
        let mut bare = runner(Scheduler::Synchronous);
        for _ in 0..5 {
            bare.step_round();
        }
        assert_eq!(
            bare.network().metrics.total_sent,
            *metrics.sent().last().unwrap()
        );
    }
}
