//! Execution backends: swappable implementations of the round loop's
//! hot path (obligation derivation + schedule execution).
//!
//! Every backend must produce the **bit-identical execution** — the same
//! obligations, keyed by the same scheduler `KeySource` draws in
//! the same canonical enumeration order (ticks ascending by node id, then
//! deliveries ascending by slot id), executed in the same ascending
//! `(key, enumeration index)` order. The scheduler key stream is stateful
//! (the random daemon draws once per key request), so enumeration order is
//! not a convention but a correctness contract: request keys in a
//! different order and every subsequent draw shifts.
//!
//! What a backend *may* change is how the obligations are derived and how
//! the sorted batch is executed:
//!
//! * [`Backend::Reference`] — the historical event-driven loop: scratch
//!   snapshots of the incremental indices, per-delivery `(from, to)` →
//!   slot binary search at execution time. The oracle all others are
//!   measured against.
//! * [`Backend::Batched`] — batched message dispatch: the schedule carries
//!   each delivery's channel slot, so execution walks runs of
//!   same-slot deliveries and pops the channel directly — no per-message
//!   address re-resolution, one occupancy transition per run.
//! * [`Backend::Soa`] — struct-of-arrays obligation projection: the tick
//!   and occupancy indices are mirrored into flat `u64` bit-words
//!   (64 nodes / slots per word), and the sorted enumeration falls out of
//!   an ascending word scan instead of comparison-sorting scratch
//!   vectors. Pre-stages the flattened-state layout the future sharded
//!   loop needs. Executes through the same slot-batched path as
//!   [`Backend::Batched`].
//!
//! Conformance is enforced by a ladder (unit equivalence tests here,
//! golden traces, the full `.scn` corpus, and a storm-mutant sweep in
//! `tests/backend_conformance.rs`), with divergence measured by the
//! chained [`crate::ScheduleDigest`] — see `BACKEND_EVALUATION.md` at the
//! workspace root.

use std::fmt;

/// Which round-loop implementation a [`crate::Runner`] uses. The choice
/// affects speed only; every backend is required to produce byte-identical
/// schedules and digests (enforced by the conformance ladder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// The historical event-driven loop — the conformance oracle.
    #[default]
    Reference,
    /// Slot-carrying schedule + run-batched channel dispatch.
    Batched,
    /// Bit-word (struct-of-arrays) obligation projection.
    Soa,
}

impl Backend {
    /// Every registered backend, reference first — the iteration order of
    /// the conformance ladder.
    pub const ALL: [Backend; 3] = [Backend::Reference, Backend::Batched, Backend::Soa];

    /// Stable lowercase label, used by `.scn` files and `--backend`.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Reference => "reference",
            Backend::Batched => "batched",
            Backend::Soa => "soa",
        }
    }

    /// Parse a label; unknown names are an error that lists the options
    /// (never a silent fall-through to the reference backend).
    pub fn parse(s: &str) -> Result<Backend, String> {
        match s {
            "reference" => Ok(Backend::Reference),
            "batched" => Ok(Backend::Batched),
            "soa" => Ok(Backend::Soa),
            other => Err(format!(
                "unknown backend {other:?} (reference | batched | soa)"
            )),
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.label()), Ok(b));
            assert_eq!(b.to_string(), b.label());
        }
    }

    #[test]
    fn default_is_reference() {
        assert_eq!(Backend::default(), Backend::Reference);
    }

    #[test]
    fn unknown_label_lists_the_options() {
        let err = Backend::parse("sharded").unwrap_err();
        assert!(err.contains("\"sharded\""), "names the bad input: {err}");
        for b in Backend::ALL {
            assert!(err.contains(b.label()), "lists {}: {err}", b.label());
        }
    }
}
