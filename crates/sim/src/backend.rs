//! Execution backends: swappable implementations of the round loop's
//! hot path (obligation derivation + schedule execution).
//!
//! Every backend must produce the **bit-identical execution** — the same
//! obligations, keyed by the same scheduler `KeySource` draws in
//! the same canonical enumeration order (ticks ascending by node id, then
//! deliveries ascending by slot id), executed in the same ascending
//! `(key, enumeration index)` order. The scheduler key stream is stateful
//! (the random daemon draws once per key request), so enumeration order is
//! not a convention but a correctness contract: request keys in a
//! different order and every subsequent draw shifts.
//!
//! What a backend *may* change is how the obligations are derived and how
//! the sorted batch is executed:
//!
//! * [`Backend::Reference`] — the historical event-driven loop: scratch
//!   snapshots of the incremental indices, per-delivery `(from, to)` →
//!   slot binary search at execution time. The oracle all others are
//!   measured against.
//! * [`Backend::Batched`] — batched message dispatch: the schedule carries
//!   each delivery's channel slot, so execution walks runs of
//!   same-slot deliveries and pops the channel directly — no per-message
//!   address re-resolution, one occupancy transition per run.
//! * [`Backend::Soa`] — struct-of-arrays obligation projection: the tick
//!   and occupancy indices are mirrored into flat `u64` bit-words
//!   (64 nodes / slots per word), and the sorted enumeration falls out of
//!   an ascending word scan instead of comparison-sorting scratch
//!   vectors. Pre-stages the flattened-state layout the sharded loop
//!   builds on. Executes through the same slot-batched path as
//!   [`Backend::Batched`].
//! * [`Backend::Sharded`] — the round body fans out across worker
//!   threads: nodes are split into contiguous shards, each shard executes
//!   its own events against pre-staged channel contents, and a
//!   deterministic round-barrier merge re-applies every send in canonical
//!   schedule order (see `crate::shard`). Derivation, key draws and the
//!   merge stay sequential, which is what keeps the digest byte-identical
//!   for *any* shard count.
//!
//! Conformance is enforced by a ladder (unit equivalence tests here,
//! golden traces, the full `.scn` corpus, and a storm-mutant sweep in
//! `tests/backend_conformance.rs`), with divergence measured by the
//! chained [`crate::ScheduleDigest`] — see `BACKEND_EVALUATION.md` at the
//! workspace root.

use std::fmt;

/// Which round-loop implementation a [`crate::Runner`] uses. The choice
/// affects speed only; every backend is required to produce byte-identical
/// schedules and digests (enforced by the conformance ladder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// The historical event-driven loop — the conformance oracle.
    #[default]
    Reference,
    /// Slot-carrying schedule + run-batched channel dispatch.
    Batched,
    /// Bit-word (struct-of-arrays) obligation projection.
    Soa,
    /// Round body sharded across `shards` worker threads with a
    /// deterministic round-barrier merge. `shards == 1` runs the same
    /// stage/execute/merge pipeline inline (no thread spawn).
    Sharded {
        /// Number of contiguous node shards (and worker threads). Clamped
        /// to at least 1 by [`Backend::parse`]; a count above the node
        /// count simply leaves trailing shards empty.
        shards: usize,
    },
}

/// Shard count used by the bare `sharded` label (no explicit `:K`). A
/// fixed constant — never derived from the host's core count, which would
/// leak ambient machine state into `.scn` files and CI matrix legs.
pub const DEFAULT_SHARDS: usize = 4;

impl Backend {
    /// Every registered backend family, reference first — the iteration
    /// order of the conformance ladder. The sharded entry uses a shard
    /// count that does not divide typical node counts evenly, so the
    /// ladder always exercises ragged shard boundaries.
    pub const ALL: [Backend; 4] = [
        Backend::Reference,
        Backend::Batched,
        Backend::Soa,
        Backend::Sharded { shards: 3 },
    ];

    /// Stable lowercase family label, used by `.scn` files, `--backend`
    /// and the CI matrix. The sharded family renders its shard count only
    /// through [`fmt::Display`] (`sharded:3`); the label is the family
    /// name alone.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Reference => "reference",
            Backend::Batched => "batched",
            Backend::Soa => "soa",
            Backend::Sharded { .. } => "sharded",
        }
    }

    /// Parse a label; unknown names are an error that lists the options
    /// (never a silent fall-through to the reference backend). The
    /// sharded family accepts `sharded` (a fixed default of
    /// [`DEFAULT_SHARDS`] shards) or `sharded:K` for an explicit count.
    pub fn parse(s: &str) -> Result<Backend, String> {
        match s {
            "reference" => Ok(Backend::Reference),
            "batched" => Ok(Backend::Batched),
            "soa" => Ok(Backend::Soa),
            "sharded" => Ok(Backend::Sharded {
                shards: DEFAULT_SHARDS,
            }),
            other => {
                if let Some(count) = other.strip_prefix("sharded:") {
                    return match count.parse::<usize>() {
                        Ok(shards) if shards >= 1 => Ok(Backend::Sharded { shards }),
                        _ => Err(format!(
                            "bad shard count {count:?} in backend {other:?} \
                             (sharded:K needs an integer K >= 1)"
                        )),
                    };
                }
                Err(format!(
                    "unknown backend {other:?} (reference | batched | soa | sharded[:K])"
                ))
            }
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::Sharded { shards } => write!(f, "sharded:{shards}"),
            other => f.write_str(other.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for b in Backend::ALL {
            // The Display form always parses back to the exact variant
            // (the sharded family carries its count, `sharded:3`)…
            assert_eq!(Backend::parse(&b.to_string()), Ok(b));
            // …and every Display form starts with the family label.
            assert!(b.to_string().starts_with(b.label()), "{b}");
        }
        // The three flat backends still print their bare label.
        for b in [Backend::Reference, Backend::Batched, Backend::Soa] {
            assert_eq!(b.to_string(), b.label());
        }
    }

    #[test]
    fn default_is_reference() {
        assert_eq!(Backend::default(), Backend::Reference);
    }

    #[test]
    fn sharded_label_parses_with_and_without_count() {
        assert_eq!(
            Backend::parse("sharded"),
            Ok(Backend::Sharded {
                shards: DEFAULT_SHARDS
            })
        );
        for shards in [1usize, 2, 7, 64] {
            assert_eq!(
                Backend::parse(&format!("sharded:{shards}")),
                Ok(Backend::Sharded { shards })
            );
        }
        for bad in ["sharded:0", "sharded:", "sharded:-2", "sharded:two"] {
            let err = Backend::parse(bad).unwrap_err();
            assert!(err.contains("shard count"), "{bad}: {err}");
        }
    }

    #[test]
    fn unknown_label_lists_the_options() {
        let err = Backend::parse("warp9").unwrap_err();
        assert!(err.contains("\"warp9\""), "names the bad input: {err}");
        for b in Backend::ALL {
            assert!(err.contains(b.label()), "lists {}: {err}", b.label());
        }
    }
}
