//! Time-series probes: record any projection of the global state per round.
//!
//! The experiment harness uses these to produce trajectory figures (F1) and
//! the examples use them for progress narration, without re-implementing
//! change detection each time.

/// Records `(round, value)` samples whenever the observed value changes.
#[derive(Debug, Clone)]
pub struct ChangeSeries<T> {
    samples: Vec<(u64, T)>,
}

impl<T: PartialEq + Clone> ChangeSeries<T> {
    /// Empty series.
    pub fn new() -> Self {
        ChangeSeries {
            samples: Vec::new(),
        }
    }

    /// Offer an observation; it is stored only if it differs from the most
    /// recent stored value. Returns `true` if stored.
    pub fn observe(&mut self, round: u64, value: T) -> bool {
        if self.samples.last().map(|(_, v)| v) == Some(&value) {
            return false;
        }
        self.samples.push((round, value));
        true
    }

    /// All stored samples in observation order.
    pub fn samples(&self) -> &[(u64, T)] {
        &self.samples
    }

    /// The most recent value, if any.
    pub fn last(&self) -> Option<&T> {
        self.samples.last().map(|(_, v)| v)
    }

    /// The round of the last *change* — i.e. when the current value was
    /// first observed. This is the "convergence round" once the run ends.
    pub fn last_change_round(&self) -> Option<u64> {
        self.samples.last().map(|&(r, _)| r)
    }

    /// Number of distinct values observed.
    pub fn changes(&self) -> usize {
        self.samples.len()
    }
}

impl<T: PartialEq + Clone> Default for ChangeSeries<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Windowed stability detector: reports how many consecutive observations
/// have been identical. Complements `Runner::run_to_quiescence` when the
/// caller wants to combine stability with other stop conditions.
#[derive(Debug, Clone)]
pub struct StabilityWindow<T> {
    last: Option<T>,
    stable_for: u64,
}

impl<T: PartialEq> StabilityWindow<T> {
    /// Fresh detector.
    pub fn new() -> Self {
        StabilityWindow {
            last: None,
            stable_for: 0,
        }
    }

    /// Offer an observation; returns the current stable streak length
    /// (0 right after a change).
    pub fn observe(&mut self, value: T) -> u64 {
        if self.last.as_ref() == Some(&value) {
            self.stable_for += 1;
        } else {
            self.last = Some(value);
            self.stable_for = 0;
        }
        self.stable_for
    }

    /// Current streak without observing.
    pub fn stable_for(&self) -> u64 {
        self.stable_for
    }
}

impl<T: PartialEq> Default for StabilityWindow<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn change_series_dedups() {
        let mut s = ChangeSeries::new();
        assert!(s.observe(1, 5));
        assert!(!s.observe(2, 5));
        assert!(s.observe(3, 4));
        assert!(!s.observe(4, 4));
        assert_eq!(s.samples(), &[(1, 5), (3, 4)]);
        assert_eq!(s.last(), Some(&4));
        assert_eq!(s.last_change_round(), Some(3));
        assert_eq!(s.changes(), 2);
    }

    #[test]
    fn empty_series() {
        let s: ChangeSeries<u32> = ChangeSeries::new();
        assert!(s.samples().is_empty());
        assert_eq!(s.last(), None);
        assert_eq!(s.last_change_round(), None);
    }

    #[test]
    fn stability_window_counts_streaks() {
        let mut w = StabilityWindow::new();
        assert_eq!(w.observe(1), 0); // first observation
        assert_eq!(w.observe(1), 1);
        assert_eq!(w.observe(1), 2);
        assert_eq!(w.observe(2), 0); // change resets
        assert_eq!(w.observe(2), 1);
        assert_eq!(w.stable_for(), 1);
    }
}
