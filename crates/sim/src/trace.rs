//! Time-series probes and the record-replay substrate.
//!
//! Two layers live here:
//!
//! * **Probes** ([`ChangeSeries`], [`StabilityWindow`]): record any
//!   projection of the global state per round. The experiment harness uses
//!   these to produce trajectory figures (F1) and the examples use them for
//!   progress narration, without re-implementing change detection each time.
//! * **Record-replay** ([`Digest`], [`TraceRecord`], [`RunTrace`]): a
//!   compact event-trace recorder. A run's entire execution — every
//!   scheduler priority key, every executed action, every topology event,
//!   every per-round state projection — is folded into one chained 64-bit
//!   digest ([`crate::Runner::step_round_digest`] folds the schedule; the
//!   caller folds its state projection). Because the simulator is
//!   deterministic per `(scenario, seed)`, re-running and comparing chained
//!   digests record-by-record *is* a bit-exact replay check: any divergence
//!   in any round, however small, changes every later digest. Traces render
//!   to a small line-based text format so failing runs can be committed as
//!   golden files and re-verified in CI.

/// Records `(round, value)` samples whenever the observed value changes.
#[derive(Debug, Clone)]
pub struct ChangeSeries<T> {
    samples: Vec<(u64, T)>,
}

impl<T: PartialEq + Clone> ChangeSeries<T> {
    /// Empty series.
    pub fn new() -> Self {
        ChangeSeries {
            samples: Vec::new(),
        }
    }

    /// Offer an observation; it is stored only if it differs from the most
    /// recent stored value. Returns `true` if stored.
    pub fn observe(&mut self, round: u64, value: T) -> bool {
        if self.samples.last().map(|(_, v)| v) == Some(&value) {
            return false;
        }
        self.samples.push((round, value));
        true
    }

    /// All stored samples in observation order.
    pub fn samples(&self) -> &[(u64, T)] {
        &self.samples
    }

    /// The most recent value, if any.
    pub fn last(&self) -> Option<&T> {
        self.samples.last().map(|(_, v)| v)
    }

    /// The round of the last *change* — i.e. when the current value was
    /// first observed. This is the "convergence round" once the run ends.
    pub fn last_change_round(&self) -> Option<u64> {
        self.samples.last().map(|&(r, _)| r)
    }

    /// Number of distinct values observed.
    pub fn changes(&self) -> usize {
        self.samples.len()
    }
}

impl<T: PartialEq + Clone> Default for ChangeSeries<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Windowed stability detector: reports how many consecutive observations
/// have been identical. Complements `Runner::run_to_quiescence` when the
/// caller wants to combine stability with other stop conditions.
#[derive(Debug, Clone)]
pub struct StabilityWindow<T> {
    last: Option<T>,
    stable_for: u64,
}

impl<T: PartialEq> StabilityWindow<T> {
    /// Fresh detector.
    pub fn new() -> Self {
        StabilityWindow {
            last: None,
            stable_for: 0,
        }
    }

    /// Offer an observation; returns the current stable streak length
    /// (0 right after a change).
    pub fn observe(&mut self, value: T) -> u64 {
        if self.last.as_ref() == Some(&value) {
            self.stable_for += 1;
        } else {
            self.last = Some(value);
            self.stable_for = 0;
        }
        self.stable_for
    }

    /// Current streak without observing.
    pub fn stable_for(&self) -> u64 {
        self.stable_for
    }
}

impl<T: PartialEq> Default for StabilityWindow<T> {
    fn default() -> Self {
        Self::new()
    }
}

// ----------------------------------------------------------------------
// Record-replay: chained digests and run traces
// ----------------------------------------------------------------------

/// Chained 64-bit run digest (FNV-1a core). Platform-independent and
/// stable across releases — unlike `std`'s `DefaultHasher`, whose
/// algorithm is explicitly unspecified — so digests recorded in golden
/// trace files stay comparable forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest {
    state: u64,
}

impl Digest {
    /// Fresh digest (FNV-1a offset basis).
    pub fn new() -> Self {
        Digest {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Fold raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Fold a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Fold a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Fold a `u128` (little-endian) — scheduler priority keys.
    pub fn write_u128(&mut self, v: u128) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Fold a string, length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Current chained value.
    pub fn value(&self) -> u64 {
        self.state
    }
}

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

/// One record of a [`RunTrace`], in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// A fault burst was injected before round `round` hitting `victims`
    /// nodes.
    Fault {
        /// Round before which the burst applied.
        round: u64,
        /// Number of corrupted nodes.
        victims: usize,
    },
    /// A topology event (rendered churn event) applied before `round`.
    Topology {
        /// Round before which the event applied.
        round: u64,
        /// Rendered event, e.g. `-edge(2,5)`.
        event: String,
    },
    /// A completed run phase: `rounds` executed, chained digest at its end.
    Phase {
        /// Phase label (`initial`, or the event that opened it).
        label: String,
        /// Rounds executed within the phase.
        rounds: u64,
        /// Chained digest value when the phase ended.
        digest: u64,
    },
}

/// The compact trace of one recorded run: a scenario fingerprint, the
/// ordered records, and the final chained digest. Render/parse round-trip
/// exactly, so byte-comparing rendered traces is the replay check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunTrace {
    /// Fingerprint of the scenario that produced the run (digest of its
    /// canonical serialized form).
    pub fingerprint: u64,
    /// Records in execution order.
    pub records: Vec<TraceRecord>,
    /// Chained digest at the end of the run.
    pub final_digest: u64,
}

impl RunTrace {
    /// Render as the line-based golden-file format.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str("# ssmdst trace v1\n");
        let _ = writeln!(out, "fingerprint = {:016x}", self.fingerprint);
        for rec in &self.records {
            match rec {
                TraceRecord::Fault { round, victims } => {
                    let _ = writeln!(out, "fault round={round} victims={victims}");
                }
                TraceRecord::Topology { round, event } => {
                    let _ = writeln!(out, "event round={round} \"{event}\"");
                }
                TraceRecord::Phase {
                    label,
                    rounds,
                    digest,
                } => {
                    let _ = writeln!(
                        out,
                        "phase \"{label}\" rounds={rounds} digest={digest:016x}"
                    );
                }
            }
        }
        let _ = writeln!(out, "final = {:016x}", self.final_digest);
        out
    }

    /// Parse the format produced by [`RunTrace::render`].
    pub fn parse(text: &str) -> Result<RunTrace, String> {
        fn field<'a>(tok: &'a str, key: &str) -> Result<&'a str, String> {
            tok.strip_prefix(key)
                .and_then(|t| t.strip_prefix('='))
                .ok_or_else(|| format!("expected {key}=…, got {tok}"))
        }
        fn quoted(rest: &str) -> Result<(String, &str), String> {
            let rest = rest
                .strip_prefix('"')
                .ok_or_else(|| format!("expected quoted label in {rest:?}"))?;
            let end = rest
                .find('"')
                .ok_or_else(|| format!("unterminated label in {rest:?}"))?;
            Ok((rest[..end].to_string(), rest[end + 1..].trim_start()))
        }
        let hex = |s: &str| u64::from_str_radix(s, 16).map_err(|e| format!("bad hex {s}: {e}"));
        let int = |s: &str| s.parse::<u64>().map_err(|e| format!("bad int {s}: {e}"));

        let mut fingerprint = None;
        let mut final_digest = None;
        let mut records = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("fingerprint =") {
                fingerprint = Some(hex(rest.trim())?);
            } else if let Some(rest) = line.strip_prefix("final =") {
                final_digest = Some(hex(rest.trim())?);
            } else if let Some(rest) = line.strip_prefix("fault ") {
                let mut toks = rest.split_whitespace();
                let round = int(field(toks.next().unwrap_or(""), "round")?)?;
                let victims = int(field(toks.next().unwrap_or(""), "victims")?)? as usize;
                records.push(TraceRecord::Fault { round, victims });
            } else if let Some(rest) = line.strip_prefix("event ") {
                let mut toks = rest.splitn(2, ' ');
                let round = int(field(toks.next().unwrap_or(""), "round")?)?;
                let (event, _) = quoted(toks.next().unwrap_or("").trim_start())?;
                records.push(TraceRecord::Topology { round, event });
            } else if let Some(rest) = line.strip_prefix("phase ") {
                let (label, rest) = quoted(rest)?;
                let mut toks = rest.split_whitespace();
                let rounds = int(field(toks.next().unwrap_or(""), "rounds")?)?;
                let digest = hex(field(toks.next().unwrap_or(""), "digest")?)?;
                records.push(TraceRecord::Phase {
                    label,
                    rounds,
                    digest,
                });
            } else {
                return Err(format!("unrecognized trace line: {line}"));
            }
        }
        Ok(RunTrace {
            fingerprint: fingerprint.ok_or("missing fingerprint line")?,
            records,
            final_digest: final_digest.ok_or("missing final line")?,
        })
    }

    /// First divergence against `other`, as a human-readable description —
    /// `None` when the traces are identical. Used by replay verification to
    /// say *where* two runs split instead of only that they did.
    pub fn first_divergence(&self, other: &RunTrace) -> Option<String> {
        if self.fingerprint != other.fingerprint {
            return Some(format!(
                "scenario fingerprint {:016x} != {:016x}",
                self.fingerprint, other.fingerprint
            ));
        }
        for (i, (a, b)) in self.records.iter().zip(&other.records).enumerate() {
            if a != b {
                return Some(format!("record {i}: {a:?} != {b:?}"));
            }
        }
        if self.records.len() != other.records.len() {
            return Some(format!(
                "record count {} != {}",
                self.records.len(),
                other.records.len()
            ));
        }
        if self.final_digest != other.final_digest {
            return Some(format!(
                "final digest {:016x} != {:016x}",
                self.final_digest, other.final_digest
            ));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn change_series_dedups() {
        let mut s = ChangeSeries::new();
        assert!(s.observe(1, 5));
        assert!(!s.observe(2, 5));
        assert!(s.observe(3, 4));
        assert!(!s.observe(4, 4));
        assert_eq!(s.samples(), &[(1, 5), (3, 4)]);
        assert_eq!(s.last(), Some(&4));
        assert_eq!(s.last_change_round(), Some(3));
        assert_eq!(s.changes(), 2);
    }

    #[test]
    fn empty_series() {
        let s: ChangeSeries<u32> = ChangeSeries::new();
        assert!(s.samples().is_empty());
        assert_eq!(s.last(), None);
        assert_eq!(s.last_change_round(), None);
    }

    #[test]
    fn stability_window_counts_streaks() {
        let mut w = StabilityWindow::new();
        assert_eq!(w.observe(1), 0); // first observation
        assert_eq!(w.observe(1), 1);
        assert_eq!(w.observe(1), 2);
        assert_eq!(w.observe(2), 0); // change resets
        assert_eq!(w.observe(2), 1);
        assert_eq!(w.stable_for(), 1);
    }

    /// The very first observation always stores: there is no "previous
    /// value" to equal, even when the value is the type's default.
    #[test]
    fn change_series_first_observation_always_stores() {
        let mut s = ChangeSeries::new();
        assert!(s.observe(0, 0u32), "first observation must store");
        assert_eq!(s.samples(), &[(0, 0)]);
        assert_eq!(s.changes(), 1);
        // A fresh window reports streak 0 on its first observation too.
        let mut w = StabilityWindow::new();
        assert_eq!(w.stable_for(), 0, "no observation yet");
        assert_eq!(w.observe(0u32), 0);
    }

    /// An equal-value run stores exactly one sample, and
    /// `last_change_round` pins the round the value was *first* observed —
    /// not the most recent offer — which is the convergence-round
    /// semantics the harness relies on.
    #[test]
    fn change_series_equal_value_run_keeps_first_round() {
        let mut s = ChangeSeries::new();
        for round in 10..200 {
            s.observe(round, 7u32);
        }
        assert_eq!(s.changes(), 1);
        assert_eq!(s.last_change_round(), Some(10), "first observation round");
        // Returning to a previously seen (but not current) value is a
        // change: only *consecutive* duplicates dedup.
        assert!(s.observe(200, 8));
        assert!(s.observe(201, 7), "re-observing an old value is a change");
        assert_eq!(s.last_change_round(), Some(201));
    }

    /// `last_change_round` boundary: round numbers are data, not indices —
    /// round 0 and repeated rounds are stored verbatim.
    #[test]
    fn change_series_round_zero_and_repeated_rounds() {
        let mut s = ChangeSeries::new();
        assert!(s.observe(0, 'a'));
        assert_eq!(s.last_change_round(), Some(0));
        // Two changes offered within the same round keep that round.
        assert!(s.observe(5, 'b'));
        assert!(s.observe(5, 'c'));
        assert_eq!(s.samples(), &[(0, 'a'), (5, 'b'), (5, 'c')]);
        assert_eq!(s.last_change_round(), Some(5));
    }

    #[test]
    fn stability_window_equal_value_run_grows_unbounded() {
        let mut w = StabilityWindow::new();
        for i in 0..1000u64 {
            assert_eq!(w.observe(42u8), i);
        }
        assert_eq!(w.stable_for(), 999);
    }

    #[test]
    fn digest_is_order_and_length_sensitive() {
        let v = |f: &dyn Fn(&mut Digest)| {
            let mut d = Digest::new();
            f(&mut d);
            d.value()
        };
        assert_eq!(v(&|d| d.write_u64(7)), v(&|d| d.write_u64(7)));
        assert_ne!(v(&|d| d.write_u64(7)), v(&|d| d.write_u64(8)));
        // Order matters.
        assert_ne!(
            v(&|d| {
                d.write_u32(1);
                d.write_u32(2);
            }),
            v(&|d| {
                d.write_u32(2);
                d.write_u32(1);
            })
        );
        // Length prefix keeps string boundaries distinct.
        assert_ne!(
            v(&|d| {
                d.write_str("ab");
                d.write_str("c");
            }),
            v(&|d| {
                d.write_str("a");
                d.write_str("bc");
            })
        );
        // The documented stable algorithm: FNV-1a over the bytes.
        assert_eq!(v(&|_| {}), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn run_trace_renders_and_parses_round_trip() {
        let t = RunTrace {
            fingerprint: 0xdead_beef_0123_4567,
            records: vec![
                TraceRecord::Fault {
                    round: 0,
                    victims: 10,
                },
                TraceRecord::Phase {
                    label: "initial".into(),
                    rounds: 123,
                    digest: 0x0011_2233_4455_6677,
                },
                TraceRecord::Topology {
                    round: 123,
                    event: "-edge(2,5)".into(),
                },
                TraceRecord::Phase {
                    label: "-edge(2,5)".into(),
                    rounds: 40,
                    digest: 0x8899_aabb_ccdd_eeff,
                },
            ],
            final_digest: 0x0f0f_0f0f_0f0f_0f0f,
        };
        let text = t.render();
        let parsed = RunTrace::parse(&text).expect("round trip");
        assert_eq!(parsed, t);
        assert_eq!(parsed.render(), text, "render is canonical");
        assert!(t.first_divergence(&parsed).is_none());
    }

    #[test]
    fn run_trace_divergence_is_located() {
        let mk = |digest| RunTrace {
            fingerprint: 1,
            records: vec![TraceRecord::Phase {
                label: "initial".into(),
                rounds: 5,
                digest,
            }],
            final_digest: digest,
        };
        let d = mk(1).first_divergence(&mk(2)).expect("diverges");
        assert!(d.contains("record 0"), "got: {d}");
        let mut longer = mk(1);
        longer.records.push(TraceRecord::Topology {
            round: 5,
            event: "crash(3)".into(),
        });
        let d = mk(1).first_divergence(&longer).expect("diverges");
        assert!(d.contains("record count"), "got: {d}");
    }

    #[test]
    fn run_trace_parse_rejects_garbage() {
        assert!(RunTrace::parse("nonsense line").is_err());
        assert!(RunTrace::parse("final = 00").is_err(), "no fingerprint");
        assert!(
            RunTrace::parse("fingerprint = 00").is_err(),
            "no final digest"
        );
        assert!(RunTrace::parse("fingerprint = zz\nfinal = 00").is_err());
        assert!(
            RunTrace::parse("fingerprint = 0\nphase \"x rounds=1 digest=0\nfinal = 0").is_err()
        );
    }
}
