//! The network: automata + directed FIFO channels over a dynamic topology,
//! laid out as a **flat, slot-addressed message fabric**.
//!
//! Every directed edge `(v, w)` owns a dense **slot id** (taken from the
//! host graph's CSR view, [`ssmdst_graph::Graph::slot_of`]); the FIFO
//! channel for `(v, w)` is simply `channels[slot]`. No ordered map sits on
//! the send/deliver path:
//!
//! * **addressing** — sends and deliveries resolve `(from, to)` to a slot
//!   by binary search inside `from`'s contiguous neighbor row (`O(log δ)`,
//!   one cache line for typical degrees), then index `channels[slot]`
//!   directly; the engine *enumerates* delivery obligations straight off
//!   the occupancy index's slot list, so discovery never searches at all;
//! * an **occupancy index** (`DenseSet`, `sim/src/dense.rs`): the unordered
//!   list of slots whose channel is non-empty, with a per-slot position
//!   table so every empty↔non-empty transition is a swap-remove — O(1),
//!   allocation-free, no tree rebalancing (the old `BTreeSet` paid
//!   `O(log m)` and a node allocation per transition);
//! * a **dirty-node list**: every node whose automaton state may have
//!   changed since the engine last looked (tick, receive, fault injection,
//!   topology change) is queued exactly once, so the engine re-evaluates
//!   [`Automaton::enabled`] only where something happened.
//!
//! At steady state the round loop (tick → send → deliver → dirty-mark)
//! performs **zero heap allocations**: the per-step [`Outbox`] and all
//! engine buffers are reused, and channel deques keep their capacity. The
//! `tests/zero_alloc.rs` suite at the workspace root pins this down with a
//! counting allocator.
//!
//! **Dynamic topology**: [`Network::remove_edge`], [`Network::insert_edge`],
//! [`Network::crash_node`], [`Network::rejoin_node`] mutate the live
//! topology between rounds. A removed channel's slot becomes a
//! **tombstone** — its deque is cleared and the slot id parked on a free
//! list for the next insertion — so churn never shifts other channels'
//! addresses and never touches an ordered map. Messages in flight on a
//! removed channel are lost (link failure loses traffic), and once any
//! churn has occurred, sends addressed to a departed neighbor are counted
//! in [`Metrics::dropped_sends`] and dropped instead of panicking — an
//! automaton acting on a stale neighbor mirror is expected behavior in the
//! churn regime, and self-stabilization is exactly the property that
//! recovers from it.

use crate::automaton::{Automaton, Message, Outbox};
use crate::dense::DenseSet;
use crate::metrics::Metrics;
use crate::NodeId;
use ssmdst_graph::{Graph, GraphBuilder};
use std::collections::VecDeque;

/// A network of `n` automata connected by reliable FIFO channels, one pair
/// per undirected edge of the (current) host topology.
///
/// Invariants enforced at runtime (catching protocol bugs early):
/// * nodes may only send to their one-hop neighbors (the paper's locality);
///   on a static topology a violation panics, after topology churn it is
///   accounted as a dropped send,
/// * channels deliver in FIFO order and never drop messages on their own —
///   loss happens only through explicit fault injection or edge removal.
///
/// [`Network::check_invariants`] audits the full accounting (occupancy,
/// in-flight totals, slot liveness, dirty flags) and is exercised after
/// every mutation by the fabric property tests.
pub struct Network<A: Automaton> {
    nodes: Vec<A>,
    /// Sorted neighbor list per node (empty while crashed).
    topo: Vec<Vec<NodeId>>,
    /// Slot id of the outgoing channel `(v, topo[v][i])`, aligned with
    /// `topo` — the O(1)-maintained mirror of the graph's CSR slot map.
    out_slot: Vec<Vec<u32>>,
    /// Liveness mask: crashed nodes take no steps and hold no channels.
    alive: Vec<bool>,
    /// One FIFO queue per directed-edge slot (tombstoned slots stay empty).
    channels: Vec<VecDeque<A::Msg>>,
    /// `(from, to)` endpoints per slot; meaningful only while the slot is
    /// live.
    slot_ends: Vec<(NodeId, NodeId)>,
    /// Whether each slot currently backs a live channel.
    slot_live: Vec<bool>,
    /// Tombstoned slots recycled by edge removal / crashes.
    free_slots: Vec<u32>,
    /// Occupancy index: slots with a non-empty channel, O(1) transitions.
    occ: DenseSet,
    in_flight: usize,
    /// Dirty-node tracking for the incremental enabled-tick index.
    dirty_flag: Vec<bool>,
    dirty: Vec<NodeId>,
    /// Scratch outbox reused by every atomic step (zero-alloc round loop).
    outbox: Outbox<A::Msg>,
    /// Scratch slot buffer reused by occupancy-driven bulk operations.
    slot_scratch: Vec<u32>,
    /// Neighbor lists at crash time, for [`Network::rejoin_node`]; indexed
    /// by node id, empty unless the node is crashed (or holds a handed-over
    /// record from an overlapping crash).
    crash_edges: Vec<Vec<NodeId>>,
    /// Whether any topology churn has occurred (relaxes the locality panic).
    dynamic: bool,
    /// Metrics accumulated across the run.
    pub metrics: Metrics,
}

/// Disjoint borrows of the fabric state the sharded backend's per-shard
/// executors need (see [`Network::fabric_parts`]): automata mutably — the
/// shard engine splits `nodes` into contiguous per-shard ranges with
/// `chunks_mut` — topology and liveness read-only. Channels, occupancy and
/// metrics are deliberately absent: shards never touch them; all fabric
/// mutation funnels through the sequential stage/merge methods.
pub(crate) struct FabricParts<'a, A: Automaton> {
    pub nodes: &'a mut [A],
    pub topo: &'a [Vec<NodeId>],
    pub out_slot: &'a [Vec<u32>],
    pub alive: &'a [bool],
    pub dynamic: bool,
}

impl<A: Automaton> Network<A> {
    /// Build a network over `g`; `make(v, neighbors)` constructs node `v`'s
    /// automaton (typically capturing the neighbor list and an arbitrary —
    /// possibly corrupted — initial state). Channel slots are assigned
    /// straight from `g`'s CSR view: slot ids are `0..2m`, lexicographic in
    /// `(from, to)`.
    pub fn from_graph(g: &Graph, mut make: impl FnMut(NodeId, &[NodeId]) -> A) -> Self {
        let n = g.n();
        let slots = g.directed_slots();
        let mut topo = Vec::with_capacity(n);
        let mut out_slot = Vec::with_capacity(n);
        let mut slot_ends = Vec::with_capacity(slots);
        let mut channels = Vec::with_capacity(slots);
        for v in g.nodes() {
            topo.push(g.neighbors(v).to_vec());
            let start = g.row_start(v);
            out_slot.push((start..start + g.degree(v) as u32).collect::<Vec<u32>>());
            for &w in g.neighbors(v) {
                debug_assert_eq!(g.slot_of(v, w), Some(slot_ends.len() as u32));
                slot_ends.push((v, w));
                channels.push(VecDeque::new());
            }
        }
        let nodes = (0..n as u32).map(|v| make(v, g.neighbors(v))).collect();
        Network {
            nodes,
            topo,
            out_slot,
            alive: vec![true; n],
            channels,
            slot_ends,
            slot_live: vec![true; slots],
            free_slots: Vec::new(),
            occ: DenseSet::new(),
            in_flight: 0,
            dirty_flag: vec![true; n],
            dirty: (0..n as NodeId).collect(),
            outbox: Outbox::new(),
            slot_scratch: Vec::new(),
            crash_edges: vec![Vec::new(); n],
            dynamic: false,
            metrics: Metrics::new(),
        }
    }

    /// Number of nodes (including crashed ones; ids are stable).
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable view of node `v`'s automaton (for oracles and observers).
    pub fn node(&self, v: NodeId) -> &A {
        &self.nodes[v as usize]
    }

    /// Mutable access — used by fault injection. Marks the node dirty so
    /// the engine re-evaluates its enabled predicate.
    pub fn node_mut(&mut self, v: NodeId) -> &mut A {
        self.mark_dirty(v);
        &mut self.nodes[v as usize]
    }

    /// All automata, index == node id (crashed nodes keep their last state).
    pub fn nodes(&self) -> &[A] {
        &self.nodes
    }

    /// Neighbors of `v` in the current topology (empty while crashed).
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.topo[v as usize]
    }

    /// Whether node `v` is currently alive (not crashed).
    pub fn is_alive(&self, v: NodeId) -> bool {
        self.alive[v as usize]
    }

    /// Ids of the currently-alive nodes, ascending.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as NodeId).filter(move |&v| self.alive[v as usize])
    }

    /// Number of currently-alive nodes.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Connected components of the live topology (alive nodes, current
    /// edges), each sorted ascending, ordered by smallest member — the
    /// one traversal every component-wise judge shares (`core::churn`,
    /// the scenario protocol registry), so alive/neighbor semantics can
    /// never drift between them.
    pub fn live_components(&self) -> Vec<Vec<NodeId>> {
        let mut seen = vec![false; self.n()];
        let mut comps = Vec::new();
        for s in self.alive_nodes() {
            if seen[s as usize] {
                continue;
            }
            let mut comp = vec![s];
            seen[s as usize] = true;
            let mut i = 0;
            while i < comp.len() {
                let v = comp[i];
                i += 1;
                // Crashed nodes are already unlinked from every neighbor
                // row, so the row walk stays within the live subgraph.
                for &w in self.neighbors(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        comp.push(w);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// Slot id of the `from → to` channel, if it exists: binary search in
    /// `from`'s sorted neighbor row, then O(1) into the aligned slot table.
    #[inline]
    fn slot_of(&self, from: NodeId, to: NodeId) -> Option<u32> {
        let row = self.topo.get(from as usize)?;
        row.binary_search(&to)
            .ok()
            .map(|i| self.out_slot[from as usize][i])
    }

    /// Messages currently queued on the `from → to` channel.
    pub fn channel_len(&self, from: NodeId, to: NodeId) -> usize {
        self.slot_of(from, to)
            .map(|s| self.channels[s as usize].len())
            .unwrap_or(0)
    }

    /// Total undelivered messages.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Total directed-edge slots ever allocated (live + tombstoned) —
    /// the fabric's address-space size, `2m` on a static topology.
    pub fn slot_count(&self) -> usize {
        self.channels.len()
    }

    /// Directed edges with a non-empty channel, sorted by `(from, to)` —
    /// read from the occupancy index in `O(k log k)` of its own size `k`.
    pub fn nonempty_channels(&self) -> Vec<(NodeId, NodeId)> {
        let mut v: Vec<(NodeId, NodeId)> = self
            .occ
            .members()
            .iter()
            .map(|&s| self.slot_ends[s as usize])
            .collect();
        v.sort_unstable();
        v
    }

    /// Snapshot the occupied slot ids into `out` (allocation-free once
    /// `out` has warmed up; unordered — the engine sorts by slot id).
    pub(crate) fn occupied_slots_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(self.occ.members());
    }

    /// Direct view of the occupancy index's member list (engine-internal,
    /// unordered, zero-copy) — the SoA backend scatters this into its
    /// bit-words without a scratch snapshot.
    #[inline]
    pub(crate) fn occupied_slot_members(&self) -> &[u32] {
        self.occ.members()
    }

    /// Endpoints of a live slot (engine-internal, O(1)).
    #[inline]
    pub(crate) fn slot_endpoints(&self, s: u32) -> (NodeId, NodeId) {
        self.slot_ends[s as usize]
    }

    /// Queue length of a slot (engine-internal, O(1)).
    #[inline]
    pub(crate) fn slot_len(&self, s: u32) -> usize {
        self.channels[s as usize].len()
    }

    /// The same answer as [`Network::nonempty_channels`], computed the
    /// pre-event-engine way: a full scan over every channel slot. Kept for
    /// the old-vs-new engine benchmarks and as a cross-check of the
    /// incremental index (the two must always agree).
    pub fn scan_nonempty_channels(&self) -> Vec<(NodeId, NodeId)> {
        let mut v: Vec<(NodeId, NodeId)> = (0..self.channels.len())
            .filter(|&s| !self.channels[s].is_empty())
            .map(|s| self.slot_ends[s])
            .collect();
        v.sort_unstable();
        v
    }

    /// Nodes touched since the last call (state changed, crashed, rejoined,
    /// or re-wired), each at most once, ascending order not guaranteed.
    /// Engine-internal: the runner drains this to maintain its tick index.
    pub fn take_dirty(&mut self) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.take_dirty_into(&mut out);
        out
    }

    /// Allocation-free form of [`Network::take_dirty`]: swaps the dirty
    /// list into `out` (clearing it first), so the two buffers ping-pong
    /// between caller and network and no round allocates.
    pub(crate) fn take_dirty_into(&mut self, out: &mut Vec<NodeId>) {
        out.clear();
        std::mem::swap(&mut self.dirty, out);
        for &v in out.iter() {
            self.dirty_flag[v as usize] = false;
        }
    }

    /// Queue `v` for enabled-predicate re-evaluation (idempotent).
    /// Engine-internal: the sharded merge replays per-shard dirty lists
    /// through this, so cross-shard duplicates collapse exactly as the
    /// sequential path's do.
    pub(crate) fn mark_dirty(&mut self, v: NodeId) {
        if !self.dirty_flag[v as usize] {
            self.dirty_flag[v as usize] = true;
            self.dirty.push(v);
        }
    }

    /// Run one spontaneous atomic step at `v` and route its sends. No-op on
    /// a crashed node.
    pub fn tick_node(&mut self, v: NodeId) {
        if !self.alive[v as usize] {
            return;
        }
        let mut out = std::mem::take(&mut self.outbox);
        self.nodes[v as usize].tick(&mut out);
        self.mark_dirty(v);
        self.route(v, &mut out);
        self.outbox = out;
    }

    /// Deliver the head of the `from → to` channel (one receive atomic
    /// step). Returns `false` if the channel was empty.
    pub fn deliver_one(&mut self, from: NodeId, to: NodeId) -> bool {
        let Some(slot) = self.slot_of(from, to) else {
            panic!("deliver_one: ({from},{to}) is not a channel"); // lint: allow(no-panic-in-library) — documented precondition: callers enumerate live channels
        };
        let Some(msg) = self.channels[slot as usize].pop_front() else {
            return false;
        };
        if self.channels[slot as usize].is_empty() {
            self.occ.remove(slot);
        }
        self.in_flight -= 1;
        self.metrics.on_deliver(msg.kind());
        let mut out = std::mem::take(&mut self.outbox);
        self.nodes[to as usize].receive(from, msg, &mut out);
        self.mark_dirty(to);
        self.route(to, &mut out);
        self.outbox = out;
        true
    }

    /// Deliver `k` consecutive messages from channel `slot` — the batched
    /// form of [`Network::deliver_one`] used by the slot-carrying
    /// backends. The address is already resolved (no `(from, to)` binary
    /// search per message), and the empty-transition check runs once at
    /// the end of the run instead of after every pop. Everything
    /// observable is sequenced exactly as `k` `deliver_one` calls:
    /// per-message `in_flight` decrement before routing (so
    /// `peak_in_flight` matches), per-message dirty-marking, FIFO order.
    /// Deferring the occupancy removal is sound because the receiver `to`
    /// only sends on `to → x` slots, never on `from → to` itself, so this
    /// slot's queue is only popped during its own run; earlier runs of
    /// *other* slots may still have pushed into it, hence the emptiness
    /// check rather than an unconditional removal.
    pub(crate) fn deliver_run(&mut self, slot: u32, k: usize) {
        let (from, to) = self.slot_ends[slot as usize];
        for _ in 0..k {
            let msg = self.channels[slot as usize]
                .pop_front()
                .expect("delivery run over-popped its channel"); // lint: allow(no-panic-in-library) — k is clamped to the channel length at enumeration time
            self.in_flight -= 1;
            self.metrics.on_deliver(msg.kind());
            let mut out = std::mem::take(&mut self.outbox);
            self.nodes[to as usize].receive(from, msg, &mut out);
            self.mark_dirty(to);
            self.route(to, &mut out);
            self.outbox = out;
        }
        if self.channels[slot as usize].is_empty() {
            self.occ.remove(slot);
        }
    }

    /// Move an outbox into channels, enforcing locality and recording
    /// metrics. Pure index arithmetic: slot lookup + O(1) occupancy
    /// transition per message, no map, no allocation.
    fn route(&mut self, from: NodeId, out: &mut Outbox<A::Msg>) {
        let n = self.nodes.len();
        for (to, msg) in out.drain() {
            let Some(slot) = self.slot_of(from, to) else {
                if self.dynamic {
                    // A stale mirror naming a departed neighbor: the send is
                    // lost, exactly like a message on a just-removed link.
                    self.metrics.dropped_sends += 1;
                    continue;
                }
                panic!("node {from} sent to non-neighbor {to}"); // lint: allow(no-panic-in-library) — protocol bug trap on static topologies; dynamic runs drop instead
            };
            self.metrics.on_send(msg.kind(), msg.size_bits(n));
            let q = &mut self.channels[slot as usize];
            if q.is_empty() {
                self.occ.insert(slot);
            }
            q.push_back(msg);
            self.in_flight += 1;
        }
        self.metrics.on_in_flight(self.in_flight);
    }

    // ------------------------------------------------------------------
    // Sharded-engine access surface (crate::shard)
    //
    // The sharded backend splits one round into three phases — stage
    // (sequential), execute (parallel over disjoint node ranges), merge
    // (sequential, canonical schedule order). The network stays the single
    // owner of every fabric invariant: the shard engine only ever touches
    // channels, occupancy, in-flight accounting and metrics through the
    // methods below, each of which mirrors exactly one slice of what
    // `route`/`deliver_one` do on the sequential path.
    // ------------------------------------------------------------------

    /// Disjoint borrows of the state the per-shard executors need:
    /// automata mutably (split into shard ranges by the caller), topology
    /// and liveness read-only. Topology is frozen for the whole round
    /// (churn happens between rounds), so sharing it is sound.
    pub(crate) fn fabric_parts(&mut self) -> FabricParts<'_, A> {
        FabricParts {
            nodes: &mut self.nodes,
            topo: &self.topo,
            out_slot: &self.out_slot,
            alive: &self.alive,
            dynamic: self.dynamic,
        }
    }

    /// Stage phase: move every non-empty channel's queue out of the
    /// fabric, handing `(slot, receiver, queue)` to `f` (the shard engine
    /// banks it in the receiver's shard inbox). Every message in a staged
    /// queue is one of this round's delivery obligations — sends during
    /// the round land in the (emptied) fabric queues at merge time and
    /// become next round's obligations — so delivery metrics are recorded
    /// here, where the per-kind sums are order-independent. Slots are
    /// visited in ascending id order so the metrics kind table fills
    /// deterministically. `in_flight` is left untouched: the merge replays
    /// each delivery's decrement at its canonical schedule position.
    // lint: hot-path
    pub(crate) fn stage_out_channels(&mut self, mut f: impl FnMut(u32, NodeId, VecDeque<A::Msg>)) {
        let mut scratch = std::mem::take(&mut self.slot_scratch);
        self.occupied_slots_into(&mut scratch);
        scratch.sort_unstable();
        for &s in &scratch {
            let q = std::mem::take(&mut self.channels[s as usize]);
            for m in &q {
                self.metrics.on_deliver(m.kind());
            }
            f(s, self.slot_ends[s as usize].1, q);
        }
        self.occ.clear();
        self.slot_scratch = scratch;
    }

    /// Return a staged queue (drained by the execute phase) to its slot,
    /// preserving its capacity for the merge phase's pushes — this is what
    /// keeps the sharded steady state allocation-free. Must run before the
    /// merge applies sends to `slot`.
    // lint: hot-path
    pub(crate) fn return_channel(&mut self, slot: u32, q: VecDeque<A::Msg>) {
        debug_assert!(q.is_empty(), "staged channel {slot} not fully delivered");
        debug_assert!(self.channels[slot as usize].is_empty());
        self.channels[slot as usize] = q;
    }

    /// Merge phase: apply one send to `slot` — metrics, occupancy
    /// transition, FIFO push, in-flight increment — exactly the per-message
    /// body of `route`.
    // lint: hot-path
    pub(crate) fn merge_send(&mut self, slot: u32, msg: A::Msg) {
        self.metrics
            .on_send(msg.kind(), msg.size_bits(self.nodes.len()));
        let q = &mut self.channels[slot as usize];
        if q.is_empty() {
            self.occ.insert(slot);
        }
        q.push_back(msg);
        self.in_flight += 1;
    }

    /// Merge phase: account one send that resolved to no live channel
    /// (stale neighbor mirror after churn) — the dynamic-topology drop
    /// branch of `route`.
    pub(crate) fn merge_dropped_send(&mut self) {
        self.metrics.dropped_sends += 1;
    }

    /// Merge phase: account one staged message as delivered (the
    /// `in_flight -= 1` that `deliver_one` performs before routing).
    // lint: hot-path
    pub(crate) fn merge_deliver_accounted(&mut self) {
        self.in_flight -= 1;
    }

    /// Merge phase: sample the in-flight high-water mark, mirroring the
    /// single `on_in_flight` call `route` makes at the end of every
    /// executed event.
    // lint: hot-path
    pub(crate) fn sample_in_flight(&mut self) {
        self.metrics.on_in_flight(self.in_flight);
    }

    // ------------------------------------------------------------------
    // Dynamic topology (slot tombstones, no map churn)
    // ------------------------------------------------------------------

    fn has_link(&self, u: NodeId, v: NodeId) -> bool {
        self.topo[u as usize].binary_search(&v).is_ok()
    }

    /// Allocate a channel slot for `(u, v)`: pop a tombstone or grow the
    /// arrays by one.
    fn add_channel(&mut self, u: NodeId, v: NodeId) -> u32 {
        match self.free_slots.pop() {
            Some(s) => {
                debug_assert!(self.channels[s as usize].is_empty());
                debug_assert!(!self.slot_live[s as usize]);
                self.slot_ends[s as usize] = (u, v);
                self.slot_live[s as usize] = true;
                s
            }
            None => {
                // Index-width contract (checked builds): slot ids are u32
                // and `u32::MAX` is reserved (the shard engine's DROPPED
                // sentinel, events.rs NO_SLOT) — growth past it would wrap
                // every later slot address.
                debug_assert!(
                    self.channels.len() < u32::MAX as usize,
                    "slot id overflows u32 (and would collide with NO_SLOT)"
                );
                self.channels.push(VecDeque::new());
                self.slot_ends.push((u, v));
                self.slot_live.push(true);
                (self.channels.len() - 1) as u32
            }
        }
    }

    /// Tombstone a slot: drop its traffic, free its id for reuse.
    fn free_slot(&mut self, s: u32) {
        self.in_flight -= self.channels[s as usize].len();
        self.channels[s as usize].clear();
        self.occ.remove(s);
        self.slot_live[s as usize] = false;
        self.free_slots.push(s);
    }

    /// Record `(u, v, slot)` in `u`'s sorted neighbor row.
    fn attach(&mut self, u: NodeId, v: NodeId, slot: u32) {
        let list = &mut self.topo[u as usize];
        match list.binary_search(&v) {
            Err(pos) => {
                list.insert(pos, v);
                self.out_slot[u as usize].insert(pos, slot);
            }
            Ok(_) => debug_assert!(false, "attach({u},{v}): link already present"),
        }
    }

    /// Remove `v` from `u`'s neighbor row; returns the channel slot that
    /// backed `u → v`, if the link existed.
    fn detach(&mut self, u: NodeId, v: NodeId) -> Option<u32> {
        let list = &mut self.topo[u as usize];
        match list.binary_search(&v) {
            Ok(pos) => {
                list.remove(pos);
                Some(self.out_slot[u as usize].remove(pos))
            }
            Err(_) => None,
        }
    }

    /// Fire the topology-change hook on an alive node and mark it dirty.
    fn notify_topology(&mut self, v: NodeId) {
        if self.alive[v as usize] {
            let nbrs = std::mem::take(&mut self.topo[v as usize]);
            self.nodes[v as usize].on_topology_change(&nbrs);
            self.topo[v as usize] = nbrs;
            self.mark_dirty(v);
        }
    }

    fn in_range(&self, v: NodeId) -> bool {
        (v as usize) < self.nodes.len()
    }

    /// Remove the undirected edge `{u, v}` from the live topology. Messages
    /// in flight on either direction are lost. Returns `false` if the edge
    /// does not currently exist (including out-of-range endpoints).
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v || !self.in_range(u) || !self.in_range(v) || !self.has_link(u, v) {
            return false;
        }
        self.dynamic = true;
        if let Some(s) = self.detach(u, v) {
            self.free_slot(s);
        }
        if let Some(s) = self.detach(v, u) {
            self.free_slot(s);
        }
        self.notify_topology(u);
        self.notify_topology(v);
        true
    }

    /// Insert the undirected edge `{u, v}` (fresh empty channels both
    /// ways, recycling tombstoned slots when available). Returns `false`
    /// if the edge already exists, `u == v`, either endpoint is out of
    /// range, or either endpoint is crashed.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let n = self.nodes.len() as NodeId;
        if u == v || u >= n || v >= n || self.has_link(u, v) {
            return false;
        }
        if !self.alive[u as usize] || !self.alive[v as usize] {
            return false;
        }
        self.dynamic = true;
        let s_uv = self.add_channel(u, v);
        self.attach(u, v, s_uv);
        let s_vu = self.add_channel(v, u);
        self.attach(v, u, s_vu);
        self.notify_topology(u);
        self.notify_topology(v);
        true
    }

    /// Crash node `v`: all incident edges (and their channels) disappear,
    /// the node stops taking steps, and its automaton state is frozen
    /// as-is. Surviving neighbors get their topology-change hook. Returns
    /// `false` if already crashed or out of range.
    pub fn crash_node(&mut self, v: NodeId) -> bool {
        if !self.in_range(v) || !self.alive[v as usize] {
            return false;
        }
        self.dynamic = true;
        let nbrs = std::mem::take(&mut self.topo[v as usize]);
        let slots = std::mem::take(&mut self.out_slot[v as usize]);
        for s in slots {
            self.free_slot(s); // v → u channels
        }
        for &u in &nbrs {
            if let Some(s) = self.detach(u, v) {
                self.free_slot(s); // u → v channels
            }
        }
        self.crash_edges[v as usize] = nbrs.clone();
        self.alive[v as usize] = false;
        self.mark_dirty(v);
        for &u in &nbrs {
            self.notify_topology(u);
        }
        true
    }

    /// Rejoin a crashed node: edges to its crash-time neighbors that are
    /// currently alive are restored with empty channels, and the node
    /// resumes stepping **with whatever stale state it crashed with** — to
    /// the protocol this is one more transient fault to stabilize out of.
    /// An edge whose other endpoint is *still* crashed is deferred: it is
    /// re-recorded against that endpoint and comes back when the later of
    /// the two rejoins, so overlapping crashes lose no edges regardless of
    /// rejoin order. Returns `false` if the node is not crashed (or out of
    /// range).
    pub fn rejoin_node(&mut self, v: NodeId) -> bool {
        if !self.in_range(v) || self.alive[v as usize] {
            return false;
        }
        self.dynamic = true;
        self.alive[v as usize] = true;
        let olds = std::mem::take(&mut self.crash_edges[v as usize]);
        for u in olds {
            if self.alive[u as usize] {
                if !self.has_link(v, u) {
                    let s_vu = self.add_channel(v, u);
                    self.attach(v, u, s_vu);
                    let s_uv = self.add_channel(u, v);
                    self.attach(u, v, s_uv);
                    self.notify_topology(u);
                }
            } else {
                // `u` crashed after `v` and so never recorded this edge
                // (it was already detached); hand the record over.
                let rec = &mut self.crash_edges[u as usize];
                if !rec.contains(&v) {
                    rec.push(v);
                }
            }
        }
        self.notify_topology(v);
        true
    }

    /// Snapshot of the current live topology as an immutable [`Graph`].
    /// Crashed nodes appear as isolated vertices (ids are stable).
    pub fn current_graph(&self) -> Graph {
        let mut b = GraphBuilder::new(self.nodes.len());
        for (v, nbrs) in self.topo.iter().enumerate() {
            for &u in nbrs {
                if (v as NodeId) < u {
                    b.add_edge(v as NodeId, u).expect("topology ids in range"); // lint: allow(no-panic-in-library) — adjacency rows only hold live node ids < n
                }
            }
        }
        b.build()
    }

    // ------------------------------------------------------------------
    // Channel-level fault injection
    // ------------------------------------------------------------------

    /// Fault injection: erase all channel contents (an arbitrary initial
    /// configuration includes arbitrary — here, empty — channel states).
    /// Driven off the occupancy index: O(#non-empty channels).
    pub fn clear_channels(&mut self) {
        let mut scratch = std::mem::take(&mut self.slot_scratch);
        self.occupied_slots_into(&mut scratch);
        for &s in &scratch {
            self.channels[s as usize].clear();
        }
        self.occ.clear();
        self.in_flight = 0;
        self.slot_scratch = scratch;
    }

    /// Fault injection: drop each in-flight message independently with
    /// probability `p` (transient corruption of channel contents; FIFO
    /// order of survivors is preserved).
    ///
    /// Driven off the occupancy index — O(#non-empty channels + #messages),
    /// never a walk over every (possibly tombstoned) slot. The non-empty
    /// channels are visited in `(from, to)` order; since empty channels
    /// never consumed RNG draws, this reproduces the draw sequence of the
    /// old full-scan implementation, so per-seed outcomes are unchanged.
    pub fn drop_in_flight<R: rand::Rng>(&mut self, p: f64, rng: &mut R) {
        let mut scratch = std::mem::take(&mut self.slot_scratch);
        self.occupied_slots_into(&mut scratch);
        scratch.sort_unstable_by_key(|&s| self.slot_ends[s as usize]);
        for &s in &scratch {
            let c = &mut self.channels[s as usize];
            let before = c.len();
            c.retain(|_| rng.random::<f64>() >= p);
            self.in_flight -= before - c.len();
            if c.is_empty() {
                self.occ.remove(s);
            }
        }
        self.slot_scratch = scratch;
    }

    // ------------------------------------------------------------------
    // Accounting audit
    // ------------------------------------------------------------------

    /// Audit every fabric invariant; panics with a description on the
    /// first violation. O(n + #slots + #messages) — meant for debug builds
    /// and the property tests, which call it after every mutation:
    ///
    /// * `in_flight` equals the sum of all channel lengths;
    /// * the occupancy index holds exactly the non-empty channels, and its
    ///   internal position table is consistent;
    /// * adjacency rows are sorted, symmetric, slot-aligned, and every
    ///   live slot is owned by exactly one directed edge;
    /// * tombstoned slots are empty, dead, and on the free list exactly
    ///   once;
    /// * the dirty list and the `dirty_flag` mask agree, with no node
    ///   queued twice;
    /// * crashed nodes have no neighbors and no slots.
    pub fn check_invariants(&self) {
        let n = self.nodes.len();
        let slots = self.channels.len();
        assert_eq!(self.slot_ends.len(), slots, "slot_ends length");
        assert_eq!(self.slot_live.len(), slots, "slot_live length");
        // Adjacency ↔ slot tables.
        let mut owned = vec![false; slots];
        for v in 0..n {
            assert_eq!(
                self.topo[v].len(),
                self.out_slot[v].len(),
                "node {v}: topo/out_slot misaligned"
            );
            assert!(
                self.topo[v].windows(2).all(|w| w[0] < w[1]),
                "node {v}: neighbor row not strictly sorted"
            );
            if !self.alive[v] {
                assert!(self.topo[v].is_empty(), "crashed node {v} has neighbors");
            }
            for (i, &w) in self.topo[v].iter().enumerate() {
                let s = self.out_slot[v][i] as usize;
                assert!(self.slot_live[s], "edge ({v},{w}) maps to dead slot {s}");
                assert!(!owned[s], "slot {s} owned by two edges");
                owned[s] = true;
                assert_eq!(
                    self.slot_ends[s],
                    (v as NodeId, w),
                    "slot {s} endpoint mismatch"
                );
                assert!(
                    self.topo[w as usize].binary_search(&(v as NodeId)).is_ok(),
                    "edge ({v},{w}) not symmetric"
                );
            }
        }
        // Slot liveness, tombstones, free list.
        for (s, &is_owned) in owned.iter().enumerate() {
            assert_eq!(
                is_owned, self.slot_live[s],
                "slot {s}: liveness/ownership mismatch"
            );
            if !self.slot_live[s] {
                assert!(
                    self.channels[s].is_empty(),
                    "tombstoned slot {s} holds messages"
                );
            }
        }
        let free: std::collections::BTreeSet<u32> = self.free_slots.iter().copied().collect();
        assert_eq!(
            free.len(),
            self.free_slots.len(),
            "free list has duplicates"
        );
        for &s in &self.free_slots {
            assert!(!self.slot_live[s as usize], "live slot {s} on free list");
        }
        let dead = slots - owned.iter().filter(|&&b| b).count();
        assert_eq!(free.len(), dead, "free list does not cover all tombstones");
        // Occupancy and in-flight accounting.
        let mut total = 0usize;
        for s in 0..slots {
            let len = self.channels[s].len();
            total += len;
            assert_eq!(
                self.occ.contains(s as u32),
                len > 0,
                "occupancy wrong for slot {s} (len {len})"
            );
        }
        assert_eq!(self.in_flight, total, "in_flight out of sync");
        self.occ.check_consistent();
        // Dirty tracking.
        let mut queued = vec![false; n];
        for &v in &self.dirty {
            assert!(!queued[v as usize], "node {v} queued dirty twice");
            queued[v as usize] = true;
        }
        for (v, &q) in queued.iter().enumerate() {
            assert_eq!(self.dirty_flag[v], q, "dirty flag mismatch at node {v}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmdst_graph::graph::graph_from_edges;

    /// Echo automaton: tick sends a counter to all neighbors; receive
    /// remembers the largest value seen.
    #[derive(Debug)]
    struct Echo {
        neighbors: Vec<NodeId>,
        counter: u32,
        best_seen: u32,
    }

    #[derive(Debug, Clone)]
    struct Num(u32);
    impl Message for Num {
        fn kind(&self) -> &'static str {
            "Num"
        }
        fn size_bits(&self, _n: usize) -> usize {
            32
        }
    }

    impl Automaton for Echo {
        type Msg = Num;
        fn tick(&mut self, out: &mut Outbox<Num>) {
            self.counter += 1;
            for &w in &self.neighbors {
                out.send(w, Num(self.counter));
            }
        }
        fn receive(&mut self, _from: NodeId, msg: Num, _out: &mut Outbox<Num>) {
            self.best_seen = self.best_seen.max(msg.0);
        }
        fn on_topology_change(&mut self, neighbors: &[NodeId]) {
            self.neighbors = neighbors.to_vec();
        }
    }

    fn echo_net() -> Network<Echo> {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        Network::from_graph(&g, |_, nbrs| Echo {
            neighbors: nbrs.to_vec(),
            counter: 0,
            best_seen: 0,
        })
    }

    #[test]
    fn tick_routes_to_all_neighbors() {
        let mut net = echo_net();
        net.tick_node(1);
        assert_eq!(net.channel_len(1, 0), 1);
        assert_eq!(net.channel_len(1, 2), 1);
        assert_eq!(net.in_flight(), 2);
        assert_eq!(net.metrics.total_sent, 2);
        net.check_invariants();
    }

    #[test]
    fn deliver_is_fifo() {
        let mut net = echo_net();
        net.tick_node(0); // sends Num(1) to 1
        net.tick_node(0); // sends Num(2) to 1
        assert_eq!(net.channel_len(0, 1), 2);
        assert!(net.deliver_one(0, 1));
        assert_eq!(net.node(1).best_seen, 1); // FIFO: first sent, first seen
        assert!(net.deliver_one(0, 1));
        assert_eq!(net.node(1).best_seen, 2);
        assert!(!net.deliver_one(0, 1)); // empty now
        assert_eq!(net.metrics.total_delivered, 2);
        net.check_invariants();
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sending_to_non_neighbor_panics() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        // Automaton that (wrongly) messages node 2 from node 0.
        struct Bad;
        impl Automaton for Bad {
            type Msg = Num;
            fn tick(&mut self, out: &mut Outbox<Num>) {
                out.send(2, Num(0));
            }
            fn receive(&mut self, _: NodeId, _: Num, _: &mut Outbox<Num>) {}
        }
        let mut net = Network::from_graph(&g, |_, _| Bad);
        net.tick_node(0);
    }

    #[test]
    fn clear_channels_resets_in_flight() {
        let mut net = echo_net();
        net.tick_node(1);
        assert_eq!(net.in_flight(), 2);
        net.clear_channels();
        assert_eq!(net.in_flight(), 0);
        assert!(net.nonempty_channels().is_empty());
        net.check_invariants();
    }

    #[test]
    fn drop_in_flight_with_p_one_drops_all() {
        let mut net = echo_net();
        net.tick_node(1);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        net.drop_in_flight(1.0, &mut rng);
        assert_eq!(net.in_flight(), 0);
        assert!(net.nonempty_channels().is_empty());
        net.check_invariants();
    }

    #[test]
    fn drop_in_flight_visits_channels_in_endpoint_order() {
        // Seed determinism across occupancy-index insertion orders: two
        // networks whose channels filled in different orders must consume
        // identical RNG streams (channel visit order is (from,to), not
        // occupancy order).
        use rand::SeedableRng;
        let fill = |first_zero: bool| {
            let mut net = echo_net();
            if first_zero {
                net.tick_node(0);
                net.tick_node(1);
            } else {
                net.tick_node(1);
                net.tick_node(0);
            }
            let mut rng = rand::rngs::StdRng::seed_from_u64(33);
            net.drop_in_flight(0.5, &mut rng);
            net.check_invariants();
            (net.in_flight(), net.nonempty_channels())
        };
        assert_eq!(fill(true), fill(false));
    }

    #[test]
    fn nonempty_channels_deterministic_order() {
        let mut net = echo_net();
        net.tick_node(1);
        net.tick_node(0);
        let ch = net.nonempty_channels();
        assert_eq!(ch, vec![(0, 1), (1, 0), (1, 2)]);
    }

    #[test]
    fn occupancy_index_matches_full_scan() {
        let mut net = echo_net();
        net.tick_node(0);
        net.tick_node(1);
        assert_eq!(net.nonempty_channels(), net.scan_nonempty_channels());
        net.deliver_one(0, 1);
        net.deliver_one(1, 0);
        net.deliver_one(1, 2);
        assert_eq!(net.nonempty_channels(), net.scan_nonempty_channels());
        assert!(net.nonempty_channels().is_empty());
    }

    #[test]
    fn peak_in_flight_tracked() {
        let mut net = echo_net();
        net.tick_node(1);
        net.tick_node(1);
        assert_eq!(net.metrics.peak_in_flight, 4);
    }

    #[test]
    fn remove_edge_loses_in_flight_messages() {
        let mut net = echo_net();
        net.tick_node(1); // messages on 1→0 and 1→2
        assert!(net.remove_edge(1, 2));
        assert_eq!(net.in_flight(), 1); // the 1→2 message is gone
        assert_eq!(net.channel_len(1, 2), 0);
        assert_eq!(net.neighbors(1), &[0]);
        assert_eq!(net.neighbors(2), &[] as &[NodeId]);
        assert!(!net.remove_edge(1, 2), "already removed");
        assert_eq!(net.nonempty_channels(), net.scan_nonempty_channels());
        net.check_invariants();
    }

    #[test]
    fn insert_edge_creates_working_channels() {
        let mut net = echo_net();
        assert!(net.insert_edge(0, 2));
        assert!(!net.insert_edge(0, 2), "duplicate");
        assert_eq!(net.neighbors(0), &[1, 2]);
        net.tick_node(0);
        assert_eq!(net.channel_len(0, 2), 1);
        assert!(net.deliver_one(0, 2));
        assert_eq!(net.node(2).best_seen, 1);
        net.check_invariants();
    }

    #[test]
    fn removed_slots_are_recycled_not_leaked() {
        let mut net = echo_net(); // 2 edges → 4 slots
        assert_eq!(net.slot_count(), 4);
        for _ in 0..10 {
            assert!(net.remove_edge(0, 1));
            assert!(net.insert_edge(0, 1));
            net.check_invariants();
        }
        // Tombstones were reused: the address space never grew.
        assert_eq!(net.slot_count(), 4);
        net.tick_node(0);
        assert!(net.deliver_one(0, 1), "recycled channel works");
    }

    #[test]
    fn stale_send_after_churn_is_dropped_not_fatal() {
        let g = graph_from_edges(2, &[(0, 1)]);
        // Automaton that keeps its captured neighbor list even when the
        // topology changes (no on_topology_change override).
        struct Stubborn;
        impl Automaton for Stubborn {
            type Msg = Num;
            fn tick(&mut self, out: &mut Outbox<Num>) {
                out.send(1, Num(0));
            }
            fn receive(&mut self, _: NodeId, _: Num, _: &mut Outbox<Num>) {}
        }
        let mut net = Network::from_graph(&g, |_, _| Stubborn);
        assert!(net.remove_edge(0, 1));
        net.tick_node(0); // sends to departed neighbor 1
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.metrics.dropped_sends, 1);
    }

    #[test]
    fn crash_isolates_and_rejoin_restores() {
        let mut net = echo_net();
        net.tick_node(0); // a message 0→1 in flight
        assert!(net.crash_node(1));
        assert!(!net.is_alive(1));
        assert_eq!(net.alive_count(), 2);
        assert_eq!(net.in_flight(), 0, "channels to/from crashed node gone");
        assert_eq!(net.neighbors(0), &[] as &[NodeId]);
        assert_eq!(net.neighbors(1), &[] as &[NodeId]);
        net.tick_node(1); // no-op while crashed
        assert_eq!(net.in_flight(), 0);
        net.check_invariants();

        assert!(net.rejoin_node(1));
        assert!(net.is_alive(1));
        assert_eq!(net.neighbors(1), &[0, 2]);
        assert_eq!(net.neighbors(0), &[1]);
        net.tick_node(1);
        assert_eq!(net.in_flight(), 2);
        assert!(!net.rejoin_node(1), "already alive");
        net.check_invariants();
    }

    #[test]
    fn rejoin_defers_edges_to_still_crashed_partners() {
        let mut net = echo_net();
        net.crash_node(0);
        net.crash_node(1);
        net.rejoin_node(1); // 0 still down: only edge {1,2} restored for now
        assert_eq!(net.neighbors(1), &[2]);
        net.rejoin_node(0);
        assert_eq!(net.neighbors(0), &[1]); // crash-time neighbor of 0
        assert_eq!(net.neighbors(1), &[0, 2]);
        net.check_invariants();
    }

    #[test]
    fn overlapping_crashes_restore_all_edges_in_either_rejoin_order() {
        // The later-crashing node never recorded the shared edge (its
        // partner was already detached), so the record must be handed over
        // when the earlier-crashed node rejoins first.
        let mut net = echo_net();
        net.crash_node(0);
        net.crash_node(1);
        net.rejoin_node(0); // 1 still down: {0,1} deferred onto 1's record
        assert_eq!(net.neighbors(0), &[] as &[NodeId]);
        net.rejoin_node(1);
        assert_eq!(net.neighbors(0), &[1]);
        assert_eq!(net.neighbors(1), &[0, 2]);
        let g = net.current_graph();
        assert_eq!(g.m(), 2, "original topology fully restored");
        net.check_invariants();
    }

    #[test]
    fn out_of_range_churn_is_a_noop_not_a_panic() {
        let mut net = echo_net(); // 3 nodes
        assert!(!net.remove_edge(99, 0));
        assert!(!net.insert_edge(0, 99));
        assert!(!net.crash_node(99));
        assert!(!net.rejoin_node(99));
    }

    #[test]
    fn current_graph_tracks_churn() {
        let mut net = echo_net();
        let g0 = net.current_graph();
        assert_eq!((g0.n(), g0.m()), (3, 2));
        net.remove_edge(0, 1);
        net.insert_edge(0, 2);
        let g1 = net.current_graph();
        assert_eq!(g1.m(), 2);
        assert!(g1.has_edge(0, 2));
        assert!(!g1.has_edge(0, 1));
    }

    #[test]
    fn dirty_list_reports_touched_nodes_once() {
        let mut net = echo_net();
        let initial = net.take_dirty();
        assert_eq!(initial.len(), 3, "everyone dirty at construction");
        assert!(net.take_dirty().is_empty());
        net.tick_node(1);
        net.tick_node(1);
        let d = net.take_dirty();
        assert_eq!(d, vec![1]);
        net.deliver_one(1, 0);
        let d = net.take_dirty();
        assert_eq!(d, vec![0]);
    }

    #[test]
    fn slots_match_graph_csr_on_construction() {
        let g = graph_from_edges(4, &[(0, 1), (0, 3), (1, 2), (2, 3)]);
        let net = Network::from_graph(&g, |_, nbrs| Echo {
            neighbors: nbrs.to_vec(),
            counter: 0,
            best_seen: 0,
        });
        assert_eq!(net.slot_count(), g.directed_slots());
        for v in g.nodes() {
            for &w in g.neighbors(v) {
                assert_eq!(net.slot_of(v, w), g.slot_of(v, w));
            }
        }
        net.check_invariants();
    }
}
