//! The network: automata + directed FIFO channels over a dynamic topology.
//!
//! Besides the classic static wiring, the network maintains the two
//! **incremental indices** the event-driven [`crate::runner::Runner`] is
//! built on:
//!
//! * an **occupancy index** (`occupied`): the sorted set of directed edges
//!   whose channel is non-empty, updated in `O(log m)` on every
//!   empty↔non-empty transition, so a round's delivery obligations are
//!   enumerated in `O(#obligations)` instead of `O(#channels)`;
//! * a **dirty-node list**: every node whose automaton state may have
//!   changed since the engine last looked (tick, receive, fault injection,
//!   topology change) is queued exactly once, so the engine re-evaluates
//!   [`Automaton::enabled`] only where something happened instead of
//!   rescanning all `n` nodes per round.
//!
//! **Dynamic topology**: [`Network::remove_edge`], [`Network::insert_edge`],
//! [`Network::crash_node`], [`Network::rejoin_node`] mutate the live
//! topology between rounds. Messages in flight on a removed channel are
//! lost (link failure loses traffic), and once any churn has occurred,
//! sends addressed to a departed neighbor are counted in
//! [`Metrics::dropped_sends`] and dropped instead of panicking — an
//! automaton acting on a stale neighbor mirror is expected behavior in the
//! churn regime, and self-stabilization is exactly the property that
//! recovers from it.

use crate::automaton::{Automaton, Message, Outbox};
use crate::metrics::Metrics;
use crate::NodeId;
use ssmdst_graph::{Graph, GraphBuilder};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A network of `n` automata connected by reliable FIFO channels, one pair
/// per undirected edge of the (current) host topology.
///
/// Invariants enforced at runtime (catching protocol bugs early):
/// * nodes may only send to their one-hop neighbors (the paper's locality);
///   on a static topology a violation panics, after topology churn it is
///   accounted as a dropped send,
/// * channels deliver in FIFO order and never drop messages on their own —
///   loss happens only through explicit fault injection or edge removal.
pub struct Network<A: Automaton> {
    nodes: Vec<A>,
    topo: Vec<Vec<NodeId>>,
    /// Liveness mask: crashed nodes take no steps and hold no channels.
    alive: Vec<bool>,
    /// Directed edge `(from, to)` → channel index.
    chan_index: BTreeMap<(NodeId, NodeId), usize>,
    /// One FIFO queue per directed edge.
    channels: Vec<VecDeque<A::Msg>>,
    /// Channel slots recycled by edge removal.
    free_channels: Vec<usize>,
    /// Occupancy index: directed edges with a non-empty channel, sorted.
    occupied: BTreeSet<(NodeId, NodeId)>,
    in_flight: usize,
    /// Dirty-node tracking for the incremental enabled-tick index.
    dirty_flag: Vec<bool>,
    dirty: Vec<NodeId>,
    /// Neighbor lists at crash time, for [`Network::rejoin_node`].
    crash_edges: BTreeMap<NodeId, Vec<NodeId>>,
    /// Whether any topology churn has occurred (relaxes the locality panic).
    dynamic: bool,
    /// Metrics accumulated across the run.
    pub metrics: Metrics,
}

impl<A: Automaton> Network<A> {
    /// Build a network over `g`; `make(v, neighbors)` constructs node `v`'s
    /// automaton (typically capturing the neighbor list and an arbitrary —
    /// possibly corrupted — initial state).
    pub fn from_graph(g: &Graph, mut make: impl FnMut(NodeId, &[NodeId]) -> A) -> Self {
        let n = g.n();
        let mut topo = Vec::with_capacity(n);
        let mut chan_index = BTreeMap::new();
        let mut channels = Vec::with_capacity(2 * g.m());
        for v in g.nodes() {
            topo.push(g.neighbors(v).to_vec());
            for &w in g.neighbors(v) {
                chan_index.insert((v, w), channels.len());
                channels.push(VecDeque::new());
            }
        }
        let nodes = (0..n as u32).map(|v| make(v, g.neighbors(v))).collect();
        Network {
            nodes,
            topo,
            alive: vec![true; n],
            chan_index,
            channels,
            free_channels: Vec::new(),
            occupied: BTreeSet::new(),
            in_flight: 0,
            dirty_flag: vec![true; n],
            dirty: (0..n as NodeId).collect(),
            crash_edges: BTreeMap::new(),
            dynamic: false,
            metrics: Metrics::new(),
        }
    }

    /// Number of nodes (including crashed ones; ids are stable).
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable view of node `v`'s automaton (for oracles and observers).
    pub fn node(&self, v: NodeId) -> &A {
        &self.nodes[v as usize]
    }

    /// Mutable access — used by fault injection. Marks the node dirty so
    /// the engine re-evaluates its enabled predicate.
    pub fn node_mut(&mut self, v: NodeId) -> &mut A {
        self.mark_dirty(v);
        &mut self.nodes[v as usize]
    }

    /// All automata, index == node id (crashed nodes keep their last state).
    pub fn nodes(&self) -> &[A] {
        &self.nodes
    }

    /// Neighbors of `v` in the current topology (empty while crashed).
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.topo[v as usize]
    }

    /// Whether node `v` is currently alive (not crashed).
    pub fn is_alive(&self, v: NodeId) -> bool {
        self.alive[v as usize]
    }

    /// Ids of the currently-alive nodes, ascending.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as NodeId).filter(move |&v| self.alive[v as usize])
    }

    /// Number of currently-alive nodes.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Messages currently queued on the `from → to` channel.
    pub fn channel_len(&self, from: NodeId, to: NodeId) -> usize {
        self.chan_index
            .get(&(from, to))
            .map(|&i| self.channels[i].len())
            .unwrap_or(0)
    }

    /// Total undelivered messages.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Directed edges with a non-empty channel, in deterministic order —
    /// read straight from the occupancy index in `O(#non-empty)`.
    pub fn nonempty_channels(&self) -> Vec<(NodeId, NodeId)> {
        self.occupied_channels().collect()
    }

    /// Allocation-free view of the occupancy index (engine hot path).
    pub(crate) fn occupied_channels(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.occupied.iter().copied()
    }

    /// The same answer as [`Network::nonempty_channels`], computed the
    /// pre-event-engine way: a full scan over every channel. Kept for the
    /// old-vs-new engine benchmarks and as a cross-check of the incremental
    /// index (the two must always agree).
    pub fn scan_nonempty_channels(&self) -> Vec<(NodeId, NodeId)> {
        self.chan_index
            .iter()
            .filter(|&(_, &i)| !self.channels[i].is_empty())
            .map(|(&e, _)| e)
            .collect()
    }

    /// Nodes touched since the last call (state changed, crashed, rejoined,
    /// or re-wired), each at most once, ascending order not guaranteed.
    /// Engine-internal: the runner drains this to maintain its tick index.
    pub fn take_dirty(&mut self) -> Vec<NodeId> {
        for &v in &self.dirty {
            self.dirty_flag[v as usize] = false;
        }
        std::mem::take(&mut self.dirty)
    }

    fn mark_dirty(&mut self, v: NodeId) {
        if !self.dirty_flag[v as usize] {
            self.dirty_flag[v as usize] = true;
            self.dirty.push(v);
        }
    }

    /// Run one spontaneous atomic step at `v` and route its sends. No-op on
    /// a crashed node.
    pub fn tick_node(&mut self, v: NodeId) {
        if !self.alive[v as usize] {
            return;
        }
        let mut out = Outbox::new();
        self.nodes[v as usize].tick(&mut out);
        self.mark_dirty(v);
        self.route(v, &mut out);
    }

    /// Deliver the head of the `from → to` channel (one receive atomic
    /// step). Returns `false` if the channel was empty.
    pub fn deliver_one(&mut self, from: NodeId, to: NodeId) -> bool {
        let Some(&ci) = self.chan_index.get(&(from, to)) else {
            panic!("deliver_one: ({from},{to}) is not a channel");
        };
        let Some(msg) = self.channels[ci].pop_front() else {
            return false;
        };
        if self.channels[ci].is_empty() {
            self.occupied.remove(&(from, to));
        }
        self.in_flight -= 1;
        self.metrics.on_deliver(msg.kind());
        let mut out = Outbox::new();
        self.nodes[to as usize].receive(from, msg, &mut out);
        self.mark_dirty(to);
        self.route(to, &mut out);
        true
    }

    /// Move an outbox into channels, enforcing locality and recording
    /// metrics.
    fn route(&mut self, from: NodeId, out: &mut Outbox<A::Msg>) {
        let n = self.nodes.len();
        for (to, msg) in out.drain() {
            let Some(&ci) = self.chan_index.get(&(from, to)) else {
                if self.dynamic {
                    // A stale mirror naming a departed neighbor: the send is
                    // lost, exactly like a message on a just-removed link.
                    self.metrics.dropped_sends += 1;
                    continue;
                }
                panic!("node {from} sent to non-neighbor {to}");
            };
            self.metrics.on_send(msg.kind(), msg.size_bits(n));
            if self.channels[ci].is_empty() {
                self.occupied.insert((from, to));
            }
            self.channels[ci].push_back(msg);
            self.in_flight += 1;
        }
        self.metrics.on_in_flight(self.in_flight);
    }

    // ------------------------------------------------------------------
    // Dynamic topology
    // ------------------------------------------------------------------

    fn has_link(&self, u: NodeId, v: NodeId) -> bool {
        self.topo[u as usize].binary_search(&v).is_ok()
    }

    fn attach(&mut self, u: NodeId, v: NodeId) {
        let list = &mut self.topo[u as usize];
        if let Err(pos) = list.binary_search(&v) {
            list.insert(pos, v);
        }
    }

    fn detach(&mut self, u: NodeId, v: NodeId) {
        let list = &mut self.topo[u as usize];
        if let Ok(pos) = list.binary_search(&v) {
            list.remove(pos);
        }
    }

    fn add_channel(&mut self, u: NodeId, v: NodeId) {
        let slot = match self.free_channels.pop() {
            Some(i) => i,
            None => {
                self.channels.push(VecDeque::new());
                self.channels.len() - 1
            }
        };
        debug_assert!(self.channels[slot].is_empty());
        self.chan_index.insert((u, v), slot);
    }

    fn remove_channel(&mut self, u: NodeId, v: NodeId) {
        if let Some(ci) = self.chan_index.remove(&(u, v)) {
            self.in_flight -= self.channels[ci].len();
            self.channels[ci].clear();
            self.occupied.remove(&(u, v));
            self.free_channels.push(ci);
        }
    }

    /// Fire the topology-change hook on an alive node and mark it dirty.
    fn notify_topology(&mut self, v: NodeId) {
        if self.alive[v as usize] {
            let nbrs = std::mem::take(&mut self.topo[v as usize]);
            self.nodes[v as usize].on_topology_change(&nbrs);
            self.topo[v as usize] = nbrs;
            self.mark_dirty(v);
        }
    }

    fn in_range(&self, v: NodeId) -> bool {
        (v as usize) < self.nodes.len()
    }

    /// Remove the undirected edge `{u, v}` from the live topology. Messages
    /// in flight on either direction are lost. Returns `false` if the edge
    /// does not currently exist (including out-of-range endpoints).
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v || !self.in_range(u) || !self.in_range(v) || !self.has_link(u, v) {
            return false;
        }
        self.dynamic = true;
        self.detach(u, v);
        self.detach(v, u);
        self.remove_channel(u, v);
        self.remove_channel(v, u);
        self.notify_topology(u);
        self.notify_topology(v);
        true
    }

    /// Insert the undirected edge `{u, v}` (fresh empty channels both
    /// ways). Returns `false` if the edge already exists, `u == v`, either
    /// endpoint is out of range, or either endpoint is crashed.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let n = self.nodes.len() as NodeId;
        if u == v || u >= n || v >= n || self.has_link(u, v) {
            return false;
        }
        if !self.alive[u as usize] || !self.alive[v as usize] {
            return false;
        }
        self.dynamic = true;
        self.attach(u, v);
        self.attach(v, u);
        self.add_channel(u, v);
        self.add_channel(v, u);
        self.notify_topology(u);
        self.notify_topology(v);
        true
    }

    /// Crash node `v`: all incident edges (and their channels) disappear,
    /// the node stops taking steps, and its automaton state is frozen
    /// as-is. Surviving neighbors get their topology-change hook. Returns
    /// `false` if already crashed or out of range.
    pub fn crash_node(&mut self, v: NodeId) -> bool {
        if !self.in_range(v) || !self.alive[v as usize] {
            return false;
        }
        self.dynamic = true;
        let nbrs = std::mem::take(&mut self.topo[v as usize]);
        for &u in &nbrs {
            self.detach(u, v);
            self.remove_channel(u, v);
            self.remove_channel(v, u);
        }
        self.crash_edges.insert(v, nbrs.clone());
        self.alive[v as usize] = false;
        self.mark_dirty(v);
        for &u in &nbrs {
            self.notify_topology(u);
        }
        true
    }

    /// Rejoin a crashed node: edges to its crash-time neighbors that are
    /// currently alive are restored with empty channels, and the node
    /// resumes stepping **with whatever stale state it crashed with** — to
    /// the protocol this is one more transient fault to stabilize out of.
    /// An edge whose other endpoint is *still* crashed is deferred: it is
    /// re-recorded against that endpoint and comes back when the later of
    /// the two rejoins, so overlapping crashes lose no edges regardless of
    /// rejoin order. Returns `false` if the node is not crashed (or out of
    /// range).
    pub fn rejoin_node(&mut self, v: NodeId) -> bool {
        if !self.in_range(v) || self.alive[v as usize] {
            return false;
        }
        self.dynamic = true;
        self.alive[v as usize] = true;
        let olds = self.crash_edges.remove(&v).unwrap_or_default();
        for u in olds {
            if self.alive[u as usize] {
                if !self.has_link(v, u) {
                    self.attach(v, u);
                    self.attach(u, v);
                    self.add_channel(v, u);
                    self.add_channel(u, v);
                    self.notify_topology(u);
                }
            } else {
                // `u` crashed after `v` and so never recorded this edge
                // (it was already detached); hand the record over.
                let rec = self.crash_edges.entry(u).or_default();
                if !rec.contains(&v) {
                    rec.push(v);
                }
            }
        }
        self.notify_topology(v);
        true
    }

    /// Snapshot of the current live topology as an immutable [`Graph`].
    /// Crashed nodes appear as isolated vertices (ids are stable).
    pub fn current_graph(&self) -> Graph {
        let mut b = GraphBuilder::new(self.nodes.len());
        for (v, nbrs) in self.topo.iter().enumerate() {
            for &u in nbrs {
                if (v as NodeId) < u {
                    b.add_edge(v as NodeId, u).expect("topology ids in range");
                }
            }
        }
        b.build()
    }

    // ------------------------------------------------------------------
    // Channel-level fault injection
    // ------------------------------------------------------------------

    /// Fault injection: erase all channel contents (an arbitrary initial
    /// configuration includes arbitrary — here, empty — channel states).
    pub fn clear_channels(&mut self) {
        for c in &mut self.channels {
            c.clear();
        }
        self.occupied.clear();
        self.in_flight = 0;
    }

    /// Fault injection: drop each in-flight message independently with
    /// probability `p` (transient corruption of channel contents; FIFO
    /// order of survivors is preserved).
    pub fn drop_in_flight<R: rand::Rng>(&mut self, p: f64, rng: &mut R) {
        let keys: Vec<(NodeId, NodeId)> = self.chan_index.keys().copied().collect();
        for e in keys {
            let ci = self.chan_index[&e];
            let c = &mut self.channels[ci];
            let before = c.len();
            c.retain(|_| rng.random::<f64>() >= p);
            self.in_flight -= before - c.len();
            if c.is_empty() {
                self.occupied.remove(&e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmdst_graph::graph::graph_from_edges;

    /// Echo automaton: tick sends a counter to all neighbors; receive
    /// remembers the largest value seen.
    #[derive(Debug)]
    struct Echo {
        neighbors: Vec<NodeId>,
        counter: u32,
        best_seen: u32,
    }

    #[derive(Debug, Clone)]
    struct Num(u32);
    impl Message for Num {
        fn kind(&self) -> &'static str {
            "Num"
        }
        fn size_bits(&self, _n: usize) -> usize {
            32
        }
    }

    impl Automaton for Echo {
        type Msg = Num;
        fn tick(&mut self, out: &mut Outbox<Num>) {
            self.counter += 1;
            for &w in &self.neighbors {
                out.send(w, Num(self.counter));
            }
        }
        fn receive(&mut self, _from: NodeId, msg: Num, _out: &mut Outbox<Num>) {
            self.best_seen = self.best_seen.max(msg.0);
        }
        fn on_topology_change(&mut self, neighbors: &[NodeId]) {
            self.neighbors = neighbors.to_vec();
        }
    }

    fn echo_net() -> Network<Echo> {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        Network::from_graph(&g, |_, nbrs| Echo {
            neighbors: nbrs.to_vec(),
            counter: 0,
            best_seen: 0,
        })
    }

    #[test]
    fn tick_routes_to_all_neighbors() {
        let mut net = echo_net();
        net.tick_node(1);
        assert_eq!(net.channel_len(1, 0), 1);
        assert_eq!(net.channel_len(1, 2), 1);
        assert_eq!(net.in_flight(), 2);
        assert_eq!(net.metrics.total_sent, 2);
    }

    #[test]
    fn deliver_is_fifo() {
        let mut net = echo_net();
        net.tick_node(0); // sends Num(1) to 1
        net.tick_node(0); // sends Num(2) to 1
        assert_eq!(net.channel_len(0, 1), 2);
        assert!(net.deliver_one(0, 1));
        assert_eq!(net.node(1).best_seen, 1); // FIFO: first sent, first seen
        assert!(net.deliver_one(0, 1));
        assert_eq!(net.node(1).best_seen, 2);
        assert!(!net.deliver_one(0, 1)); // empty now
        assert_eq!(net.metrics.total_delivered, 2);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sending_to_non_neighbor_panics() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        // Automaton that (wrongly) messages node 2 from node 0.
        struct Bad;
        impl Automaton for Bad {
            type Msg = Num;
            fn tick(&mut self, out: &mut Outbox<Num>) {
                out.send(2, Num(0));
            }
            fn receive(&mut self, _: NodeId, _: Num, _: &mut Outbox<Num>) {}
        }
        let mut net = Network::from_graph(&g, |_, _| Bad);
        net.tick_node(0);
    }

    #[test]
    fn clear_channels_resets_in_flight() {
        let mut net = echo_net();
        net.tick_node(1);
        assert_eq!(net.in_flight(), 2);
        net.clear_channels();
        assert_eq!(net.in_flight(), 0);
        assert!(net.nonempty_channels().is_empty());
    }

    #[test]
    fn drop_in_flight_with_p_one_drops_all() {
        let mut net = echo_net();
        net.tick_node(1);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        net.drop_in_flight(1.0, &mut rng);
        assert_eq!(net.in_flight(), 0);
        assert!(net.nonempty_channels().is_empty());
    }

    #[test]
    fn nonempty_channels_deterministic_order() {
        let mut net = echo_net();
        net.tick_node(1);
        net.tick_node(0);
        let ch = net.nonempty_channels();
        assert_eq!(ch, vec![(0, 1), (1, 0), (1, 2)]);
    }

    #[test]
    fn occupancy_index_matches_full_scan() {
        let mut net = echo_net();
        net.tick_node(0);
        net.tick_node(1);
        assert_eq!(net.nonempty_channels(), net.scan_nonempty_channels());
        net.deliver_one(0, 1);
        net.deliver_one(1, 0);
        net.deliver_one(1, 2);
        assert_eq!(net.nonempty_channels(), net.scan_nonempty_channels());
        assert!(net.nonempty_channels().is_empty());
    }

    #[test]
    fn peak_in_flight_tracked() {
        let mut net = echo_net();
        net.tick_node(1);
        net.tick_node(1);
        assert_eq!(net.metrics.peak_in_flight, 4);
    }

    #[test]
    fn remove_edge_loses_in_flight_messages() {
        let mut net = echo_net();
        net.tick_node(1); // messages on 1→0 and 1→2
        assert!(net.remove_edge(1, 2));
        assert_eq!(net.in_flight(), 1); // the 1→2 message is gone
        assert_eq!(net.channel_len(1, 2), 0);
        assert_eq!(net.neighbors(1), &[0]);
        assert_eq!(net.neighbors(2), &[] as &[NodeId]);
        assert!(!net.remove_edge(1, 2), "already removed");
        assert_eq!(net.nonempty_channels(), net.scan_nonempty_channels());
    }

    #[test]
    fn insert_edge_creates_working_channels() {
        let mut net = echo_net();
        assert!(net.insert_edge(0, 2));
        assert!(!net.insert_edge(0, 2), "duplicate");
        assert_eq!(net.neighbors(0), &[1, 2]);
        net.tick_node(0);
        assert_eq!(net.channel_len(0, 2), 1);
        assert!(net.deliver_one(0, 2));
        assert_eq!(net.node(2).best_seen, 1);
    }

    #[test]
    fn stale_send_after_churn_is_dropped_not_fatal() {
        let g = graph_from_edges(2, &[(0, 1)]);
        // Automaton that keeps its captured neighbor list even when the
        // topology changes (no on_topology_change override).
        struct Stubborn;
        impl Automaton for Stubborn {
            type Msg = Num;
            fn tick(&mut self, out: &mut Outbox<Num>) {
                out.send(1, Num(0));
            }
            fn receive(&mut self, _: NodeId, _: Num, _: &mut Outbox<Num>) {}
        }
        let mut net = Network::from_graph(&g, |_, _| Stubborn);
        assert!(net.remove_edge(0, 1));
        net.tick_node(0); // sends to departed neighbor 1
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.metrics.dropped_sends, 1);
    }

    #[test]
    fn crash_isolates_and_rejoin_restores() {
        let mut net = echo_net();
        net.tick_node(0); // a message 0→1 in flight
        assert!(net.crash_node(1));
        assert!(!net.is_alive(1));
        assert_eq!(net.alive_count(), 2);
        assert_eq!(net.in_flight(), 0, "channels to/from crashed node gone");
        assert_eq!(net.neighbors(0), &[] as &[NodeId]);
        assert_eq!(net.neighbors(1), &[] as &[NodeId]);
        net.tick_node(1); // no-op while crashed
        assert_eq!(net.in_flight(), 0);

        assert!(net.rejoin_node(1));
        assert!(net.is_alive(1));
        assert_eq!(net.neighbors(1), &[0, 2]);
        assert_eq!(net.neighbors(0), &[1]);
        net.tick_node(1);
        assert_eq!(net.in_flight(), 2);
        assert!(!net.rejoin_node(1), "already alive");
    }

    #[test]
    fn rejoin_defers_edges_to_still_crashed_partners() {
        let mut net = echo_net();
        net.crash_node(0);
        net.crash_node(1);
        net.rejoin_node(1); // 0 still down: only edge {1,2} restored for now
        assert_eq!(net.neighbors(1), &[2]);
        net.rejoin_node(0);
        assert_eq!(net.neighbors(0), &[1]); // crash-time neighbor of 0
        assert_eq!(net.neighbors(1), &[0, 2]);
    }

    #[test]
    fn overlapping_crashes_restore_all_edges_in_either_rejoin_order() {
        // The later-crashing node never recorded the shared edge (its
        // partner was already detached), so the record must be handed over
        // when the earlier-crashed node rejoins first.
        let mut net = echo_net();
        net.crash_node(0);
        net.crash_node(1);
        net.rejoin_node(0); // 1 still down: {0,1} deferred onto 1's record
        assert_eq!(net.neighbors(0), &[] as &[NodeId]);
        net.rejoin_node(1);
        assert_eq!(net.neighbors(0), &[1]);
        assert_eq!(net.neighbors(1), &[0, 2]);
        let g = net.current_graph();
        assert_eq!(g.m(), 2, "original topology fully restored");
    }

    #[test]
    fn out_of_range_churn_is_a_noop_not_a_panic() {
        let mut net = echo_net(); // 3 nodes
        assert!(!net.remove_edge(99, 0));
        assert!(!net.insert_edge(0, 99));
        assert!(!net.crash_node(99));
        assert!(!net.rejoin_node(99));
    }

    #[test]
    fn current_graph_tracks_churn() {
        let mut net = echo_net();
        let g0 = net.current_graph();
        assert_eq!((g0.n(), g0.m()), (3, 2));
        net.remove_edge(0, 1);
        net.insert_edge(0, 2);
        let g1 = net.current_graph();
        assert_eq!(g1.m(), 2);
        assert!(g1.has_edge(0, 2));
        assert!(!g1.has_edge(0, 1));
    }

    #[test]
    fn dirty_list_reports_touched_nodes_once() {
        let mut net = echo_net();
        let initial = net.take_dirty();
        assert_eq!(initial.len(), 3, "everyone dirty at construction");
        assert!(net.take_dirty().is_empty());
        net.tick_node(1);
        net.tick_node(1);
        let d = net.take_dirty();
        assert_eq!(d, vec![1]);
        net.deliver_one(1, 0);
        let d = net.take_dirty();
        assert_eq!(d, vec![0]);
    }
}
