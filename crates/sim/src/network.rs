//! The network: automata + directed FIFO channels over a static topology.

use crate::automaton::{Automaton, Message, Outbox};
use crate::metrics::Metrics;
use crate::NodeId;
use ssmdst_graph::Graph;
use std::collections::{BTreeMap, VecDeque};

/// A network of `n` automata connected by reliable FIFO channels, one pair
/// per undirected edge of the host graph.
///
/// Invariants enforced at runtime (catching protocol bugs early):
/// * nodes may only send to their one-hop neighbors (the paper's locality),
/// * channels deliver in FIFO order and never drop messages on their own —
///   loss happens only through explicit fault injection.
pub struct Network<A: Automaton> {
    nodes: Vec<A>,
    topo: Vec<Vec<NodeId>>,
    /// Directed edge `(from, to)` → channel index.
    chan_index: BTreeMap<(NodeId, NodeId), usize>,
    /// One FIFO queue per directed edge.
    channels: Vec<VecDeque<A::Msg>>,
    in_flight: usize,
    /// Metrics accumulated across the run.
    pub metrics: Metrics,
}

impl<A: Automaton> Network<A> {
    /// Build a network over `g`; `make(v, neighbors)` constructs node `v`'s
    /// automaton (typically capturing the neighbor list and an arbitrary —
    /// possibly corrupted — initial state).
    pub fn from_graph(g: &Graph, mut make: impl FnMut(NodeId, &[NodeId]) -> A) -> Self {
        let n = g.n();
        let mut topo = Vec::with_capacity(n);
        let mut chan_index = BTreeMap::new();
        let mut channels = Vec::with_capacity(2 * g.m());
        for v in g.nodes() {
            topo.push(g.neighbors(v).to_vec());
            for &w in g.neighbors(v) {
                chan_index.insert((v, w), channels.len());
                channels.push(VecDeque::new());
            }
        }
        let nodes = (0..n as u32).map(|v| make(v, g.neighbors(v))).collect();
        Network {
            nodes,
            topo,
            chan_index,
            channels,
            in_flight: 0,
            metrics: Metrics::new(),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable view of node `v`'s automaton (for oracles and observers).
    pub fn node(&self, v: NodeId) -> &A {
        &self.nodes[v as usize]
    }

    /// Mutable access — used only by fault injection.
    pub fn node_mut(&mut self, v: NodeId) -> &mut A {
        &mut self.nodes[v as usize]
    }

    /// All automata, index == node id.
    pub fn nodes(&self) -> &[A] {
        &self.nodes
    }

    /// Neighbors of `v` in the topology.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.topo[v as usize]
    }

    /// Messages currently queued on the `from → to` channel.
    pub fn channel_len(&self, from: NodeId, to: NodeId) -> usize {
        self.chan_index
            .get(&(from, to))
            .map(|&i| self.channels[i].len())
            .unwrap_or(0)
    }

    /// Total undelivered messages.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Directed edges with a non-empty channel, in deterministic order.
    pub fn nonempty_channels(&self) -> Vec<(NodeId, NodeId)> {
        self.chan_index
            .iter()
            .filter(|&(_, &i)| !self.channels[i].is_empty())
            .map(|(&e, _)| e)
            .collect()
    }

    /// Run one spontaneous atomic step at `v` and route its sends.
    pub fn tick_node(&mut self, v: NodeId) {
        let mut out = Outbox::new();
        self.nodes[v as usize].tick(&mut out);
        self.route(v, &mut out);
    }

    /// Deliver the head of the `from → to` channel (one receive atomic
    /// step). Returns `false` if the channel was empty.
    pub fn deliver_one(&mut self, from: NodeId, to: NodeId) -> bool {
        let Some(&ci) = self.chan_index.get(&(from, to)) else {
            panic!("deliver_one: ({from},{to}) is not a channel");
        };
        let Some(msg) = self.channels[ci].pop_front() else {
            return false;
        };
        self.in_flight -= 1;
        self.metrics.on_deliver(msg.kind());
        let mut out = Outbox::new();
        self.nodes[to as usize].receive(from, msg, &mut out);
        self.route(to, &mut out);
        true
    }

    /// Move an outbox into channels, enforcing locality and recording
    /// metrics.
    fn route(&mut self, from: NodeId, out: &mut Outbox<A::Msg>) {
        let n = self.nodes.len();
        for (to, msg) in out.drain() {
            let ci = *self
                .chan_index
                .get(&(from, to))
                .unwrap_or_else(|| panic!("node {from} sent to non-neighbor {to}"));
            self.metrics.on_send(msg.kind(), msg.size_bits(n));
            self.channels[ci].push_back(msg);
            self.in_flight += 1;
        }
        self.metrics.on_in_flight(self.in_flight);
    }

    /// Fault injection: erase all channel contents (an arbitrary initial
    /// configuration includes arbitrary — here, empty — channel states).
    pub fn clear_channels(&mut self) {
        for c in &mut self.channels {
            c.clear();
        }
        self.in_flight = 0;
    }

    /// Fault injection: drop each in-flight message independently with
    /// probability `p` (transient corruption of channel contents; FIFO
    /// order of survivors is preserved).
    pub fn drop_in_flight<R: rand::Rng>(&mut self, p: f64, rng: &mut R) {
        for c in &mut self.channels {
            let before = c.len();
            c.retain(|_| rng.random::<f64>() >= p);
            self.in_flight -= before - c.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmdst_graph::graph::graph_from_edges;

    /// Echo automaton: tick sends a counter to all neighbors; receive
    /// remembers the largest value seen.
    #[derive(Debug)]
    struct Echo {
        neighbors: Vec<NodeId>,
        counter: u32,
        best_seen: u32,
    }

    #[derive(Debug, Clone)]
    struct Num(u32);
    impl Message for Num {
        fn kind(&self) -> &'static str {
            "Num"
        }
        fn size_bits(&self, _n: usize) -> usize {
            32
        }
    }

    impl Automaton for Echo {
        type Msg = Num;
        fn tick(&mut self, out: &mut Outbox<Num>) {
            self.counter += 1;
            for &w in &self.neighbors {
                out.send(w, Num(self.counter));
            }
        }
        fn receive(&mut self, _from: NodeId, msg: Num, _out: &mut Outbox<Num>) {
            self.best_seen = self.best_seen.max(msg.0);
        }
    }

    fn echo_net() -> Network<Echo> {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        Network::from_graph(&g, |_, nbrs| Echo {
            neighbors: nbrs.to_vec(),
            counter: 0,
            best_seen: 0,
        })
    }

    #[test]
    fn tick_routes_to_all_neighbors() {
        let mut net = echo_net();
        net.tick_node(1);
        assert_eq!(net.channel_len(1, 0), 1);
        assert_eq!(net.channel_len(1, 2), 1);
        assert_eq!(net.in_flight(), 2);
        assert_eq!(net.metrics.total_sent, 2);
    }

    #[test]
    fn deliver_is_fifo() {
        let mut net = echo_net();
        net.tick_node(0); // sends Num(1) to 1
        net.tick_node(0); // sends Num(2) to 1
        assert_eq!(net.channel_len(0, 1), 2);
        assert!(net.deliver_one(0, 1));
        assert_eq!(net.node(1).best_seen, 1); // FIFO: first sent, first seen
        assert!(net.deliver_one(0, 1));
        assert_eq!(net.node(1).best_seen, 2);
        assert!(!net.deliver_one(0, 1)); // empty now
        assert_eq!(net.metrics.total_delivered, 2);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sending_to_non_neighbor_panics() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        // Automaton that (wrongly) messages node 2 from node 0.
        struct Bad;
        impl Automaton for Bad {
            type Msg = Num;
            fn tick(&mut self, out: &mut Outbox<Num>) {
                out.send(2, Num(0));
            }
            fn receive(&mut self, _: NodeId, _: Num, _: &mut Outbox<Num>) {}
        }
        let mut net = Network::from_graph(&g, |_, _| Bad);
        net.tick_node(0);
    }

    #[test]
    fn clear_channels_resets_in_flight() {
        let mut net = echo_net();
        net.tick_node(1);
        assert_eq!(net.in_flight(), 2);
        net.clear_channels();
        assert_eq!(net.in_flight(), 0);
        assert!(net.nonempty_channels().is_empty());
    }

    #[test]
    fn drop_in_flight_with_p_one_drops_all() {
        let mut net = echo_net();
        net.tick_node(1);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        net.drop_in_flight(1.0, &mut rng);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn nonempty_channels_deterministic_order() {
        let mut net = echo_net();
        net.tick_node(1);
        net.tick_node(0);
        let ch = net.nonempty_channels();
        assert_eq!(ch, vec![(0, 1), (1, 0), (1, 2)]);
    }

    #[test]
    fn peak_in_flight_tracked() {
        let mut net = echo_net();
        net.tick_node(1);
        net.tick_node(1);
        assert_eq!(net.metrics.peak_in_flight, 4);
    }
}
