//! The run loop: the event-driven engine, rounds, convergence detection.

use crate::automaton::Automaton;
use crate::backend::Backend;
use crate::events::{EventQueue, PendingSlot};
use crate::network::Network;
use crate::observer::{Observer, Stop};
use crate::scheduler::{Action, KeySource, Scheduler};
use crate::stop::QuiescenceGate;

pub use crate::stop::quiet_window;

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The observer predicate returned `true`.
    Converged,
    /// The round limit was reached first.
    RoundLimit,
}

/// Result of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "inspect the outcome: a run that hit its round limit did not converge"]
pub struct RunOutcome {
    /// Rounds executed in this call.
    pub rounds: u64,
    /// Why the run stopped.
    pub reason: StopReason,
}

impl RunOutcome {
    /// Whether the observer predicate was satisfied.
    pub fn converged(&self) -> bool {
        self.reason == StopReason::Converged
    }
}

/// Drives a [`Network`] under a [`Scheduler`], counting rounds.
///
/// **Round semantics** (the unit of the paper's `O(m n² log n)` bound): at
/// the start of a round the runner determines the *obligations* — one tick
/// per enabled alive node plus one delivery per message then in flight. The
/// scheduler keys them; the round ends when all have executed. Messages
/// sent during the round are delivered in later rounds (they are the next
/// round's obligations), so information travels at most one hop per round,
/// matching the standard asynchronous round definition.
///
/// **Event-driven engine**: obligations are *derived*, not *discovered*.
/// The tick set is an incremental index maintained from the network's
/// dirty-node list (only nodes whose state changed get their
/// [`Automaton::enabled`] predicate re-evaluated), and delivery obligations
/// are read off the flat fabric's channel occupancy index — so a round
/// costs `O(k log k)` in its own obligation count `k`, never
/// `O(n + #channels)` rescans. At steady state the whole loop (derive →
/// key → sort → execute → route) reuses its buffers and touches no ordered
/// tree: zero heap allocations per round, pinned by `tests/zero_alloc.rs`.
/// [`Runner::step_round_rescan`] keeps the old full-scan discovery alive
/// for benchmarks; both paths execute the identical schedule.
///
/// # Example
///
/// A two-node token automaton under the synchronous daemon (a protocol
/// crate would plug its own [`Automaton`] in the same way):
///
/// ```
/// use ssmdst_sim::{Automaton, Message, Network, Outbox, Runner, Scheduler};
///
/// #[derive(Debug, Clone)]
/// struct Ping;
/// impl Message for Ping {
///     fn kind(&self) -> &'static str { "Ping" }
///     fn size_bits(&self, _n: usize) -> usize { 1 }
/// }
///
/// /// Gossips once per round; counts what it hears.
/// struct Chatter { neighbors: Vec<u32>, heard: u32 }
/// impl Automaton for Chatter {
///     type Msg = Ping;
///     fn tick(&mut self, out: &mut Outbox<Ping>) {
///         for &w in &self.neighbors { out.send(w, Ping); }
///     }
///     fn receive(&mut self, _from: u32, _msg: Ping, _out: &mut Outbox<Ping>) {
///         self.heard += 1;
///     }
/// }
///
/// let g = ssmdst_graph::graph::graph_from_edges(2, &[(0, 1)]);
/// let net = Network::from_graph(&g, |_, nbrs| Chatter {
///     neighbors: nbrs.to_vec(),
///     heard: 0,
/// });
/// let mut runner = Runner::new(net, Scheduler::Synchronous);
/// let out = runner.run_until(10, |net, _| net.node(0).heard >= 3);
/// assert!(out.converged());
/// assert_eq!(out.rounds, 4); // messages sent in round r arrive in round r+1
/// ```
pub struct Runner<A: Automaton> {
    net: Network<A>,
    keys: KeySource,
    queue: EventQueue,
    round: u64,
    backend: Backend,
    /// Per-shard buffers for [`Backend::Sharded`]; empty (and never
    /// allocated) unless that backend runs.
    shard: crate::shard::ShardEngine<A::Msg>,
}

impl<A: Automaton> Runner<A> {
    /// Wrap a network with a scheduler (on the [`Backend::Reference`]
    /// round loop).
    pub fn new(net: Network<A>, sched: Scheduler) -> Self {
        Runner {
            net,
            keys: KeySource::new(sched),
            queue: EventQueue::new(),
            round: 0,
            backend: Backend::Reference,
            shard: crate::shard::ShardEngine::new(),
        }
    }

    /// Switch the round-loop backend. Safe at any round boundary — every
    /// backend derives the identical schedule from the same incremental
    /// indices, so execution is bit-for-bit unchanged (the conformance
    /// ladder enforces it); only the hot-path cost profile differs.
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
    }

    /// The active round-loop backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The wrapped network (for oracles and metrics).
    pub fn network(&self) -> &Network<A> {
        &self.net
    }

    /// Mutable network access (fault injection and topology churn between
    /// rounds). All engine-relevant bookkeeping — channel occupancy, node
    /// liveness, dirty flags — lives inside [`Network`] and is maintained
    /// by its methods, so arbitrary inter-round mutation through this
    /// handle keeps the event indices consistent.
    pub fn network_mut(&mut self) -> &mut Network<A> {
        &mut self.net
    }

    /// Completed rounds since construction.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Execute one full round on the event-driven engine.
    pub fn step_round(&mut self) {
        let _ = self.step_round_observed(&mut ());
    }

    /// Execute one full round through an [`Observer`] stack:
    /// `on_round_start` before obligations are derived, `on_event` for
    /// every scheduled event (in execution order, before the batch runs),
    /// `on_round_end` after — whose verdict is returned. With the unit
    /// observer `()` every hook is an inlineable no-op, so this *is*
    /// [`Runner::step_round`]: same execution, same zero-allocation
    /// steady state.
    pub fn step_round_observed<O: Observer<A>>(&mut self, obs: &mut O) -> Stop {
        obs.on_round_start(&self.net, self.round);
        self.queue.refresh(&mut self.net);
        match self.backend {
            Backend::Reference => {
                let events = self.queue.schedule(self.round, &mut self.keys, &self.net);
                for &(key, idx, act) in events {
                    obs.on_event(key, idx, act);
                }
                Self::execute(&mut self.net, events);
            }
            Backend::Batched => {
                let events = self
                    .queue
                    .schedule_batched(self.round, &mut self.keys, &self.net);
                for &(key, idx, act, _) in events {
                    obs.on_event(key, idx, act);
                }
                Self::execute_slotted(&mut self.net, events);
            }
            Backend::Soa => {
                let events = self
                    .queue
                    .schedule_soa(self.round, &mut self.keys, &self.net);
                for &(key, idx, act, _) in events {
                    obs.on_event(key, idx, act);
                }
                Self::execute_slotted(&mut self.net, events);
            }
            Backend::Sharded { shards } => {
                // Derivation and key draws stay sequential (the SoA
                // bit-word projection); only execution fans out. The
                // shard engine's round-barrier merge re-applies sends in
                // this exact schedule order — see `crate::shard`.
                let events = self
                    .queue
                    .schedule_soa(self.round, &mut self.keys, &self.net);
                for &(key, idx, act, _) in events {
                    obs.on_event(key, idx, act);
                }
                self.shard.run_round(&mut self.net, events, shards);
            }
        }
        self.round += 1;
        self.net.metrics.rounds = self.round;
        obs.on_round_end(&self.net, self.round)
    }

    /// Execute one full round, folding the complete schedule — every
    /// daemon priority key, enumeration index and action, in execution
    /// order — into `digest`. Byte-for-byte the same execution as
    /// [`Runner::step_round`]; the digest chain is the record-replay
    /// witness: two runs whose chained digests agree every round executed
    /// the identical schedule. (Equivalent to attaching a
    /// [`crate::ScheduleDigest`] observer; both fold through
    /// [`crate::observer::fold_event`].)
    pub fn step_round_digest(&mut self, digest: &mut crate::trace::Digest) {
        struct FoldInto<'a>(&'a mut crate::trace::Digest);
        impl<A: Automaton> Observer<A> for FoldInto<'_> {
            fn on_event(&mut self, key: u128, idx: u32, action: Action) {
                crate::observer::fold_event(self.0, key, idx, action);
            }
        }
        let _ = self.step_round_observed(&mut FoldInto(digest));
    }

    /// Execute one full round with the pre-engine obligation discovery: a
    /// full rescan of all nodes and channels. Byte-for-byte the same
    /// execution as [`Runner::step_round`] (same obligations, same keys,
    /// same order) — only the discovery cost differs. Kept for the
    /// old-vs-new engine benchmarks.
    pub fn step_round_rescan(&mut self) {
        self.queue.refresh(&mut self.net); // keep the index warm for later steps
        let events = self
            .queue
            .schedule_rescan(self.round, &mut self.keys, &self.net);
        Self::execute(&mut self.net, events);
        self.round += 1;
        self.net.metrics.rounds = self.round;
    }

    // lint: hot-path
    fn execute(net: &mut Network<A>, events: &[(u128, u32, Action)]) {
        for &(_, _, act) in events {
            match act {
                // Re-check the guard at execution time: an earlier event of
                // this round (a delivery) may have disabled the node, and a
                // daemon must never run a step whose guard is false.
                Action::Tick(v) => {
                    if net.is_alive(v) && net.node(v).enabled() {
                        net.tick_node(v);
                    }
                }
                Action::Deliver(from, to) => {
                    // The channel is guaranteed to still hold this round's
                    // message: deliveries only pop and FIFO keeps order.
                    let ok = net.deliver_one(from, to);
                    debug_assert!(ok, "obligation for empty channel {from}->{to}");
                }
            }
        }
    }

    /// Execute a slot-carrying schedule (batched and SoA backends): ticks
    /// keep the per-event guard re-check; consecutive same-slot deliveries
    /// collapse into one [`Network::deliver_run`] call, so the channel
    /// address is resolved zero times (the schedule carries it) instead of
    /// once per message.
    // lint: hot-path
    fn execute_slotted(net: &mut Network<A>, events: &[PendingSlot]) {
        let mut i = 0;
        while i < events.len() {
            let (_, _, act, slot) = events[i];
            match act {
                Action::Tick(v) => {
                    // Same execution-time guard re-check as `execute`.
                    if net.is_alive(v) && net.node(v).enabled() {
                        net.tick_node(v);
                    }
                    i += 1;
                }
                Action::Deliver(..) => {
                    let mut j = i + 1;
                    while j < events.len() && events[j].3 == slot {
                        j += 1;
                    }
                    net.deliver_run(slot, j - i);
                    i = j;
                }
            }
        }
    }

    /// Run until `observer` returns `true` (checked after every round) or
    /// `max_rounds` elapse. (Closure form of [`Runner::run_observed`] with
    /// a [`crate::observer::StopWhen`]; prefer [`crate::Session`] for new
    /// drivers.)
    pub fn run_until(
        &mut self,
        max_rounds: u64,
        observer: impl FnMut(&Network<A>, u64) -> bool,
    ) -> RunOutcome {
        self.run_observed(max_rounds, &mut crate::observer::stop_when(observer))
    }

    /// Run until the observer stack answers [`Stop::Done`] (checked after
    /// every round) or `max_rounds` elapse.
    pub fn run_observed<O: Observer<A>>(&mut self, max_rounds: u64, obs: &mut O) -> RunOutcome {
        let start = self.round;
        while self.round - start < max_rounds {
            if self.step_round_observed(obs).is_done() {
                return RunOutcome {
                    rounds: self.round - start,
                    reason: StopReason::Converged,
                };
            }
        }
        RunOutcome {
            rounds: self.round - start,
            reason: StopReason::RoundLimit,
        }
    }

    /// Run until a *projection* of the global state is unchanged for
    /// `quiet_rounds` consecutive rounds (or `max_rounds` elapse). This is
    /// the quiescence detector used to decide that the protocol has
    /// stabilized: the projection is typically the tree edge set + dmax.
    /// The predicate is the shared [`QuiescenceGate`], so every driver
    /// judges stability identically.
    pub fn run_to_quiescence<P: PartialEq>(
        &mut self,
        max_rounds: u64,
        quiet_rounds: u64,
        mut project: impl FnMut(&Network<A>) -> P,
    ) -> RunOutcome {
        let mut gate = QuiescenceGate::primed(quiet_rounds, project(&self.net));
        self.run_until(max_rounds, |net, _| gate.observe(project(net)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{Message, Outbox};
    use crate::NodeId;
    use ssmdst_graph::generators::structured::path;

    /// Min-propagation automaton: floods the smallest value seen; converges
    /// to the global minimum everywhere. A tiny self-stabilizing protocol
    /// that exercises rounds, channels and convergence detection.
    #[derive(Debug)]
    struct MinFlood {
        neighbors: Vec<NodeId>,
        value: u32,
    }

    #[derive(Debug, Clone)]
    struct Val(u32);
    impl Message for Val {
        fn kind(&self) -> &'static str {
            "Val"
        }
        fn size_bits(&self, n: usize) -> usize {
            (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize
        }
    }

    impl Automaton for MinFlood {
        type Msg = Val;
        fn tick(&mut self, out: &mut Outbox<Val>) {
            for &w in &self.neighbors {
                out.send(w, Val(self.value));
            }
        }
        fn receive(&mut self, _from: NodeId, msg: Val, _out: &mut Outbox<Val>) {
            self.value = self.value.min(msg.0);
        }
        fn on_topology_change(&mut self, neighbors: &[NodeId]) {
            self.neighbors = neighbors.to_vec();
        }
    }

    fn min_net(n: usize) -> Network<MinFlood> {
        let g = path(n).unwrap();
        Network::from_graph(&g, |v, nbrs| MinFlood {
            neighbors: nbrs.to_vec(),
            value: 100 - v, // minimum (100 - (n-1)) sits at the far end
        })
    }

    fn all_converged(net: &Network<MinFlood>, expect: u32) -> bool {
        net.nodes().iter().all(|a| a.value == expect)
    }

    #[test]
    fn sync_converges_in_diameter_rounds() {
        let n = 10;
        let mut r = Runner::new(min_net(n), Scheduler::Synchronous);
        let expect = 100 - (n as u32 - 1);
        let out = r.run_until(50, |net, _| all_converged(net, expect));
        assert!(out.converged());
        // Information travels one hop per round: diameter-ish rounds.
        assert!(out.rounds <= 2 * n as u64, "took {} rounds", out.rounds);
    }

    #[test]
    fn all_schedulers_converge() {
        for sched in [
            Scheduler::Synchronous,
            Scheduler::RandomAsync { seed: 3 },
            Scheduler::Adversarial { seed: 3 },
        ] {
            let mut r = Runner::new(min_net(8), sched);
            let out = r.run_until(200, |net, _| all_converged(net, 93));
            assert!(out.converged(), "{sched:?} failed to converge");
        }
    }

    #[test]
    fn round_limit_is_respected() {
        let mut r = Runner::new(min_net(8), Scheduler::Synchronous);
        let out = r.run_until(3, |_, _| false);
        assert_eq!(out.reason, StopReason::RoundLimit);
        assert_eq!(out.rounds, 3);
        assert_eq!(r.round(), 3);
    }

    #[test]
    fn quiescence_detects_stability() {
        let mut r = Runner::new(min_net(6), Scheduler::Synchronous);
        let out = r.run_to_quiescence(100, 3, |net| {
            net.nodes().iter().map(|a| a.value).collect::<Vec<_>>()
        });
        assert!(out.converged());
        assert!(all_converged(r.network(), 95));
    }

    #[test]
    fn rounds_count_matches_metrics() {
        let mut r = Runner::new(min_net(4), Scheduler::Synchronous);
        r.step_round();
        r.step_round();
        assert_eq!(r.network().metrics.rounds, 2);
    }

    #[test]
    fn identical_seeds_give_identical_executions() {
        let run = |seed| {
            let mut r = Runner::new(min_net(9), Scheduler::RandomAsync { seed });
            let _ = r.run_until(30, |_, _| false);
            let vals: Vec<u32> = r.network().nodes().iter().map(|a| a.value).collect();
            (vals, r.network().metrics.total_sent)
        };
        assert_eq!(run(7), run(7));
    }

    /// The indexed engine and the legacy rescan path must produce the exact
    /// same execution for every daemon — same per-round values, same
    /// message counts.
    #[test]
    fn event_engine_matches_rescan_engine() {
        for sched in [
            Scheduler::Synchronous,
            Scheduler::RandomAsync { seed: 11 },
            Scheduler::Adversarial { seed: 11 },
        ] {
            let trace = |rescan: bool| {
                let mut r = Runner::new(min_net(9), sched);
                let mut samples = Vec::new();
                for _ in 0..25 {
                    if rescan {
                        r.step_round_rescan();
                    } else {
                        r.step_round();
                    }
                    samples.push((
                        r.network()
                            .nodes()
                            .iter()
                            .map(|a| a.value)
                            .collect::<Vec<_>>(),
                        r.network().in_flight(),
                        r.network().metrics.total_sent,
                    ));
                }
                samples
            };
            assert_eq!(
                trace(false),
                trace(true),
                "engines diverged under {sched:?}"
            );
        }
    }

    /// Every backend must execute the bit-identical run: same per-round
    /// schedule digest, same node states, same metrics — including across
    /// mid-run churn (slot recycling) and fault injection, and including
    /// switching backends at a round boundary mid-run.
    #[test]
    fn all_backends_execute_identically() {
        use crate::backend::Backend;
        let run = |backend: Backend, sched: Scheduler| {
            let mut d = crate::trace::Digest::new();
            let mut r = Runner::new(min_net(9), sched);
            r.set_backend(backend);
            for round in 0..40 {
                if round == 12 {
                    r.network_mut().remove_edge(3, 4);
                    r.network_mut().insert_edge(0, 4); // recycles slots
                }
                if round == 20 {
                    r.network_mut().crash_node(7);
                }
                if round == 28 {
                    r.network_mut().rejoin_node(7);
                }
                r.step_round_digest(&mut d);
            }
            let vals: Vec<u32> = r.network().nodes().iter().map(|a| a.value).collect();
            (
                d.value(),
                vals,
                r.network().in_flight(),
                r.network().metrics.total_sent,
                r.network().metrics.peak_in_flight,
            )
        };
        for sched in [
            Scheduler::Synchronous,
            Scheduler::RandomAsync { seed: 21 },
            Scheduler::Adversarial { seed: 21 },
        ] {
            let reference = run(Backend::Reference, sched);
            for b in [
                Backend::Batched,
                Backend::Soa,
                // 1 = inline pipeline, 3 = ragged split of n = 9,
                // 8 = near-degenerate (one node per shard, one empty).
                Backend::Sharded { shards: 1 },
                Backend::Sharded { shards: 3 },
                Backend::Sharded { shards: 8 },
            ] {
                assert_eq!(reference, run(b, sched), "{b} diverged under {sched:?}");
            }
        }
        // Switching backends between rounds changes nothing either.
        let mut d = crate::trace::Digest::new();
        let sched = Scheduler::RandomAsync { seed: 21 };
        let mut r = Runner::new(min_net(9), sched);
        for round in 0..40 {
            r.set_backend(crate::backend::Backend::ALL[round % crate::backend::Backend::ALL.len()]);
            if round == 12 {
                r.network_mut().remove_edge(3, 4);
                r.network_mut().insert_edge(0, 4);
            }
            if round == 20 {
                r.network_mut().crash_node(7);
            }
            if round == 28 {
                r.network_mut().rejoin_node(7);
            }
            r.step_round_digest(&mut d);
        }
        assert_eq!(d.value(), run(Backend::Reference, sched).0);
    }

    /// Rotating the *shard count* at every round boundary mid-run changes
    /// nothing: the schedule is derived and keyed before any shard runs,
    /// and the round-barrier merge re-applies effects in canonical order,
    /// so the digest and final state are shard-count-invariant even when
    /// the count changes between rounds (mirroring the backend-rotation
    /// probe above).
    #[test]
    fn rotating_shard_count_per_round_is_invariant() {
        use crate::backend::Backend;
        let sched = Scheduler::RandomAsync { seed: 33 };
        let run_fixed = |backend: Backend| {
            let mut d = crate::trace::Digest::new();
            let mut r = Runner::new(min_net(9), sched);
            r.set_backend(backend);
            for round in 0..40 {
                if round == 12 {
                    r.network_mut().remove_edge(3, 4);
                    r.network_mut().insert_edge(0, 4);
                }
                if round == 20 {
                    r.network_mut().crash_node(7);
                }
                r.step_round_digest(&mut d);
            }
            let vals: Vec<u32> = r.network().nodes().iter().map(|a| a.value).collect();
            (d.value(), vals, r.network().metrics.total_sent)
        };
        let reference = run_fixed(Backend::Reference);
        let mut d = crate::trace::Digest::new();
        let mut r = Runner::new(min_net(9), sched);
        for round in 0..40usize {
            r.set_backend(Backend::Sharded {
                shards: [1, 2, 3, 8][round % 4],
            });
            if round == 12 {
                r.network_mut().remove_edge(3, 4);
                r.network_mut().insert_edge(0, 4);
            }
            if round == 20 {
                r.network_mut().crash_node(7);
            }
            r.step_round_digest(&mut d);
        }
        let vals: Vec<u32> = r.network().nodes().iter().map(|a| a.value).collect();
        assert_eq!(
            reference,
            (d.value(), vals, r.network().metrics.total_sent),
            "rotating shard counts diverged from the reference"
        );
    }

    /// A tick whose `enabled()` guard is falsified *mid-round* (by a
    /// delivery ordered before it) must not fire: daemons never execute a
    /// step with a false guard. The automaton asserts the guard inside
    /// `tick`, so any violation panics; random/adversarial interleavings
    /// across many seeds exercise both deliver-before-tick orders.
    #[test]
    fn tick_guard_rechecked_at_execution_time() {
        #[derive(Debug, Clone)]
        struct Block;
        impl Message for Block {
            fn kind(&self) -> &'static str {
                "Block"
            }
            fn size_bits(&self, _n: usize) -> usize {
                1
            }
        }
        /// Node 0 blocks node 1 with its first send; node 1's spontaneous
        /// step is only enabled while unblocked.
        struct Blocker;
        struct Guarded {
            blocked: bool,
        }
        enum Either {
            B(Blocker),
            G(Guarded),
        }
        impl Automaton for Either {
            type Msg = Block;
            fn tick(&mut self, out: &mut Outbox<Block>) {
                match self {
                    Either::B(_) => out.send(1, Block),
                    Either::G(g) => assert!(!g.blocked, "tick fired with false guard"),
                }
            }
            fn receive(&mut self, _: NodeId, _: Block, _: &mut Outbox<Block>) {
                if let Either::G(g) = self {
                    g.blocked = true;
                }
            }
            fn enabled(&self) -> bool {
                match self {
                    Either::B(_) => true,
                    Either::G(g) => !g.blocked,
                }
            }
        }
        for seed in 0..25 {
            for sched in [
                Scheduler::RandomAsync { seed },
                Scheduler::Adversarial { seed },
            ] {
                let g = ssmdst_graph::graph::graph_from_edges(2, &[(0, 1)]);
                let net = Network::from_graph(&g, |v, _| {
                    if v == 0 {
                        Either::B(Blocker)
                    } else {
                        Either::G(Guarded { blocked: false })
                    }
                });
                let mut r = Runner::new(net, sched);
                for _ in 0..5 {
                    r.step_round(); // panics without the execution-time re-check
                }
            }
        }
    }

    /// `quiet_window` boundaries: degenerate sizes sit on the 64-round
    /// floor; the window first grows at n = 11 (6·11 = 66 > 64).
    #[test]
    fn quiet_window_boundaries() {
        assert_eq!(quiet_window(0), 64, "n = 0 floors at 64");
        assert_eq!(quiet_window(1), 64, "n = 1 floors at 64");
        assert_eq!(quiet_window(10), 64, "6·10 = 60 still under the floor");
        assert_eq!(quiet_window(11), 66, "first size where the window grows");
        assert_eq!(quiet_window(12), 72);
    }

    /// Monotonicity: a bigger network never gets a *shorter* confirmation
    /// window. Future tuning of the formula can't silently regress
    /// convergence detection past this fence.
    #[test]
    fn quiet_window_is_monotone_and_floored() {
        let mut prev = 0;
        for n in 0..=4096usize {
            let w = quiet_window(n);
            assert!(w >= 64, "window below floor at n = {n}");
            assert!(w >= prev, "window shrank at n = {n}: {prev} -> {w}");
            assert!(
                w >= 6 * n as u64,
                "window must cover the O(n)-period search wave at n = {n}"
            );
            prev = w;
        }
    }

    /// The digest-folding step executes the identical schedule as
    /// `step_round`, and the chained digest is (a) deterministic per seed
    /// and (b) sensitive to the seed.
    #[test]
    fn step_round_digest_matches_plain_execution() {
        for sched in [
            Scheduler::Synchronous,
            Scheduler::RandomAsync { seed: 13 },
            Scheduler::Adversarial { seed: 13 },
        ] {
            let run = |digested: bool| {
                let mut d = crate::trace::Digest::new();
                let mut r = Runner::new(min_net(9), sched);
                for _ in 0..30 {
                    if digested {
                        r.step_round_digest(&mut d);
                    } else {
                        r.step_round();
                    }
                }
                let vals: Vec<u32> = r.network().nodes().iter().map(|a| a.value).collect();
                (vals, r.network().metrics.total_sent, d.value())
            };
            let (v1, s1, d1) = run(true);
            let (v2, s2, _) = run(false);
            assert_eq!((&v1, s1), ((&v2), s2), "digested run diverged: {sched:?}");
            let (v3, s3, d3) = run(true);
            assert_eq!((v1, s1, d1), (v3, s3, d3), "digest not deterministic");
        }
        // Different seeds produce different schedules, hence digests.
        let digest_of = |seed| {
            let mut d = crate::trace::Digest::new();
            let mut r = Runner::new(min_net(9), Scheduler::RandomAsync { seed });
            for _ in 0..30 {
                r.step_round_digest(&mut d);
            }
            d.value()
        };
        assert_ne!(digest_of(1), digest_of(2));
    }

    /// Obligations survive topology churn between rounds: removing an edge
    /// drops its in-flight messages, crashing a node removes its tick.
    #[test]
    fn churn_between_rounds_keeps_engine_consistent() {
        let mut r = Runner::new(min_net(6), Scheduler::Synchronous);
        r.step_round();
        r.network_mut().remove_edge(2, 3);
        r.step_round();
        r.network_mut().crash_node(5);
        for _ in 0..10 {
            r.step_round();
        }
        // Left segment 0..=2 still floods its own minimum (node 2 holds 98).
        assert_eq!(r.network().node(2).value, 98);
        r.network_mut().rejoin_node(5);
        r.network_mut().insert_edge(2, 3);
        let out = r.run_until(50, |net, _| {
            net.alive_nodes().all(|v| net.node(v).value == 95)
        });
        assert!(out.converged(), "no re-convergence after churn healed");
    }
}
