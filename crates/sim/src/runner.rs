//! The run loop: rounds, convergence detection and outcomes.

use crate::automaton::Automaton;
use crate::network::Network;
use crate::scheduler::{Action, Picker, Scheduler};
use crate::NodeId;

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The observer predicate returned `true`.
    Converged,
    /// The round limit was reached first.
    RoundLimit,
}

/// Result of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Rounds executed in this call.
    pub rounds: u64,
    /// Why the run stopped.
    pub reason: StopReason,
}

impl RunOutcome {
    /// Whether the observer predicate was satisfied.
    pub fn converged(&self) -> bool {
        self.reason == StopReason::Converged
    }
}

/// Drives a [`Network`] under a [`Scheduler`], counting rounds.
///
/// **Round semantics** (the unit of the paper's `O(m n² log n)` bound): at
/// the start of a round the runner snapshots the *obligations* — one tick
/// per node plus one delivery per message then in flight. The scheduler
/// orders them; the round ends when all have executed. Messages sent during
/// the round are delivered in later rounds (they are the next round's
/// obligations), so information travels at most one hop per round, matching
/// the standard asynchronous round definition.
pub struct Runner<A: Automaton> {
    net: Network<A>,
    picker: Picker,
    round: u64,
}

impl<A: Automaton> Runner<A> {
    /// Wrap a network with a scheduler.
    pub fn new(net: Network<A>, sched: Scheduler) -> Self {
        Runner {
            net,
            picker: Picker::new(sched),
            round: 0,
        }
    }

    /// The wrapped network (for oracles and metrics).
    pub fn network(&self) -> &Network<A> {
        &self.net
    }

    /// Mutable network access (fault injection between rounds).
    pub fn network_mut(&mut self) -> &mut Network<A> {
        &mut self.net
    }

    /// Completed rounds since construction.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Execute one full round.
    pub fn step_round(&mut self) {
        let mut obligations: Vec<Action> = (0..self.net.n() as NodeId).map(Action::Tick).collect();
        // One delivery obligation per message currently in flight; the
        // runner re-pops the same channel that many times, preserving FIFO.
        for (from, to) in self.net.nonempty_channels() {
            for _ in 0..self.net.channel_len(from, to) {
                obligations.push(Action::Deliver(from, to));
            }
        }
        for act in self.picker.order(self.round, obligations) {
            match act {
                Action::Tick(v) => self.net.tick_node(v),
                Action::Deliver(from, to) => {
                    // The channel is guaranteed to still hold this round's
                    // message: deliveries only pop and FIFO keeps order.
                    let ok = self.net.deliver_one(from, to);
                    debug_assert!(ok, "obligation for empty channel {from}->{to}");
                }
            }
        }
        self.round += 1;
        self.net.metrics.rounds = self.round;
    }

    /// Run until `observer` returns `true` (checked after every round) or
    /// `max_rounds` elapse.
    pub fn run_until(
        &mut self,
        max_rounds: u64,
        mut observer: impl FnMut(&Network<A>, u64) -> bool,
    ) -> RunOutcome {
        let start = self.round;
        while self.round - start < max_rounds {
            self.step_round();
            if observer(&self.net, self.round) {
                return RunOutcome {
                    rounds: self.round - start,
                    reason: StopReason::Converged,
                };
            }
        }
        RunOutcome {
            rounds: self.round - start,
            reason: StopReason::RoundLimit,
        }
    }

    /// Run until a *projection* of the global state is unchanged for
    /// `quiet_rounds` consecutive rounds (or `max_rounds` elapse). This is
    /// the quiescence detector used to decide that the protocol has
    /// stabilized: the projection is typically the tree edge set + dmax.
    pub fn run_to_quiescence<P: PartialEq>(
        &mut self,
        max_rounds: u64,
        quiet_rounds: u64,
        mut project: impl FnMut(&Network<A>) -> P,
    ) -> RunOutcome {
        let mut last = project(&self.net);
        let mut quiet = 0u64;
        self.run_until(max_rounds, |net, _| {
            let cur = project(net);
            if cur == last {
                quiet += 1;
            } else {
                quiet = 0;
                last = cur;
            }
            quiet >= quiet_rounds
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{Message, Outbox};
    use ssmdst_graph::generators::structured::path;

    /// Min-propagation automaton: floods the smallest value seen; converges
    /// to the global minimum everywhere. A tiny self-stabilizing protocol
    /// that exercises rounds, channels and convergence detection.
    #[derive(Debug)]
    struct MinFlood {
        neighbors: Vec<NodeId>,
        value: u32,
    }

    #[derive(Debug, Clone)]
    struct Val(u32);
    impl Message for Val {
        fn kind(&self) -> &'static str {
            "Val"
        }
        fn size_bits(&self, n: usize) -> usize {
            (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize
        }
    }

    impl Automaton for MinFlood {
        type Msg = Val;
        fn tick(&mut self, out: &mut Outbox<Val>) {
            for &w in &self.neighbors {
                out.send(w, Val(self.value));
            }
        }
        fn receive(&mut self, _from: NodeId, msg: Val, _out: &mut Outbox<Val>) {
            self.value = self.value.min(msg.0);
        }
    }

    fn min_net(n: usize) -> Network<MinFlood> {
        let g = path(n).unwrap();
        Network::from_graph(&g, |v, nbrs| MinFlood {
            neighbors: nbrs.to_vec(),
            value: 100 - v, // minimum (100 - (n-1)) sits at the far end
        })
    }

    fn all_converged(net: &Network<MinFlood>, expect: u32) -> bool {
        net.nodes().iter().all(|a| a.value == expect)
    }

    #[test]
    fn sync_converges_in_diameter_rounds() {
        let n = 10;
        let mut r = Runner::new(min_net(n), Scheduler::Synchronous);
        let expect = 100 - (n as u32 - 1);
        let out = r.run_until(50, |net, _| all_converged(net, expect));
        assert!(out.converged());
        // Information travels one hop per round: diameter-ish rounds.
        assert!(out.rounds <= 2 * n as u64, "took {} rounds", out.rounds);
    }

    #[test]
    fn all_schedulers_converge() {
        for sched in [
            Scheduler::Synchronous,
            Scheduler::RandomAsync { seed: 3 },
            Scheduler::Adversarial { seed: 3 },
        ] {
            let mut r = Runner::new(min_net(8), sched);
            let out = r.run_until(200, |net, _| all_converged(net, 93));
            assert!(out.converged(), "{sched:?} failed to converge");
        }
    }

    #[test]
    fn round_limit_is_respected() {
        let mut r = Runner::new(min_net(8), Scheduler::Synchronous);
        let out = r.run_until(3, |_, _| false);
        assert_eq!(out.reason, StopReason::RoundLimit);
        assert_eq!(out.rounds, 3);
        assert_eq!(r.round(), 3);
    }

    #[test]
    fn quiescence_detects_stability() {
        let mut r = Runner::new(min_net(6), Scheduler::Synchronous);
        let out = r.run_to_quiescence(100, 3, |net| {
            net.nodes().iter().map(|a| a.value).collect::<Vec<_>>()
        });
        assert!(out.converged());
        assert!(all_converged(r.network(), 95));
    }

    #[test]
    fn rounds_count_matches_metrics() {
        let mut r = Runner::new(min_net(4), Scheduler::Synchronous);
        r.step_round();
        r.step_round();
        assert_eq!(r.network().metrics.rounds, 2);
    }

    #[test]
    fn identical_seeds_give_identical_executions() {
        let run = |seed| {
            let mut r = Runner::new(min_net(9), Scheduler::RandomAsync { seed });
            r.run_until(30, |_, _| false);
            let vals: Vec<u32> = r.network().nodes().iter().map(|a| a.value).collect();
            (vals, r.network().metrics.total_sent)
        };
        assert_eq!(run(7), run(7));
    }
}
