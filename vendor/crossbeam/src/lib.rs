//! Offline shim for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate. Only `crossbeam::thread::scope` is used by this workspace, and
//! since Rust 1.63 the standard library provides scoped threads natively —
//! the shim is a thin adapter over [`std::thread::scope`] mirroring
//! crossbeam's closure signature (`spawn` passes the scope back in) and
//! `Result` return.
//!
//! One behavioral difference: if a spawned thread panics, std's scope
//! re-raises the panic at the end of `scope` instead of returning `Err`.
//! Workspace callers `.expect()` the result, so both surface identically.

pub mod thread {
    /// Mirror of `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope again so
        /// nested spawns work, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Mirror of `crossbeam::thread::scope`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_see_borrowed_state() {
            let counter = AtomicUsize::new(0);
            let out = super::scope(|s| {
                let handles: Vec<_> = (0..8)
                    .map(|_| s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed)))
                    .collect();
                let mut joined = 0;
                for h in handles {
                    h.join().unwrap();
                    joined += 1;
                }
                joined
            })
            .unwrap();
            assert_eq!(out, 8);
            assert_eq!(counter.load(Ordering::Relaxed), 8);
        }

        #[test]
        fn nested_spawn_through_passed_scope() {
            let v = super::scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(v, 42);
        }
    }
}
