//! Offline shim for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate, implementing the subset this workspace uses:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header) generating one `#[test]` per property;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * range strategies, tuple strategies (arity 2–4),
//!   [`strategy::Strategy::prop_map`], [`collection::vec`], and the
//!   weighted [`prop_oneof!`] union.
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports
//! its case index and panics. Every test's RNG is seeded from an FNV-1a
//! hash of its fully-qualified name — deterministic run-to-run and across
//! machines (the workspace's explicit-seed policy), overridable with the
//! `PROPTEST_SEED` environment variable when hunting for new failures.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    use rand::prelude::*;
    use rand::rngs::StdRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    /// Weighted union over strategies sharing one value type — the
    /// expansion target of [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` pairs. Panics on an empty list
        /// or an all-zero weight sum — a misconstructed test, not input.
        pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            assert!(
                options.iter().map(|(w, _)| *w as u64).sum::<u64>() > 0,
                "prop_oneof! needs at least one positive weight"
            );
            Union { options }
        }
    }

    /// Coercion helper for the [`prop_oneof!`](crate::prop_oneof)
    /// expansion (an `as`-cast cannot name an inferred value type).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.random_range(0..total);
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("pick < total by construction")
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.random_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// Failure raised by `prop_assert!` macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic RNG driving one property test, seeded from the test's
/// fully-qualified name (or `PROPTEST_SEED` when set).
pub fn rng_for(test_path: &str) -> StdRng {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = s.parse::<u64>() {
            return StdRng::seed_from_u64(seed);
        }
    }
    // FNV-1a over the test path: stable across runs, rustc versions and
    // platforms (unlike `DefaultHasher`).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// `prop_oneof![w1 => s1, w2 => s2, ...]` (or unweighted
/// `prop_oneof![s1, s2, ...]`): draw from one of several strategies with
/// a common value type, chosen with probability proportional to weight.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "prop_assert_eq: left = {:?}, right = {:?}",
            *l,
            *r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "prop_assert_eq: left = {:?}, right = {:?}: {}",
            *l,
            *r,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    // Entry with a config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    // Entry without one.
    ($(#[$meta:meta])* fn $($rest:tt)*) => {
        $crate::proptest!(
            @cfg ($crate::test_runner::Config::default());
            $(#[$meta])* fn $($rest)*
        );
    };
    // One expansion arm per property fn.
    (@cfg ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #![allow(unused_mut)]
                let config: $crate::test_runner::Config = $cfg;
                let mut rng =
                    $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n\
                             (deterministic; rerun reproduces it, or set \
                             PROPTEST_SEED to explore)",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_for_is_stable_per_name() {
        use rand::prelude::*;
        let mut a = crate::rng_for("x::y");
        let mut b = crate::rng_for("x::y");
        let mut c = crate::rng_for("x::z");
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        assert_eq!(xs, (0..8).map(|_| b.random()).collect::<Vec<u64>>());
        assert_ne!(xs, (0..8).map(|_| c.random()).collect::<Vec<u64>>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(
            n in 1usize..10,
            x in (0u64..100).prop_map(|v| v * 2),
            v in collection::vec(0i32..5, 0..6),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert_eq!(x % 2, 0);
            prop_assert!(v.len() < 6);
            for e in v {
                prop_assert!((0..5).contains(&e), "element {} out of range", e);
            }
        }

        #[test]
        fn oneof_draws_every_arm_and_respects_zero_weight(
            v in collection::vec(
                prop_oneof![
                    3 => (0u32..1).prop_map(|_| 10u32),
                    1 => Just(20u32),
                    0 => Just(99u32),
                ],
                64..65,
            ),
        ) {
            prop_assert!(v.iter().all(|&x| x == 10 || x == 20), "zero-weight arm drawn");
            prop_assert!(v.contains(&10), "dominant arm never drawn in 64 draws");
        }

        #[test]
        fn early_ok_return_is_allowed(flip in 0u32..2) {
            if flip == 0 {
                return Ok(());
            }
            prop_assert_eq!(flip, 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(dead_code)]
            fn inner(x in 0u32..10) {
                prop_assert!(x < 3, "x was {}", x);
            }
        }
        inner();
    }
}
