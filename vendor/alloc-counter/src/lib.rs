//! A counting [`GlobalAlloc`] for **zero-allocation assertions** in tests.
//!
//! In the style of the other `vendor/` shims, this is a minimal in-tree
//! stand-in for crates like `dhat` or `allocation-counter`, which the
//! offline build environment cannot fetch. It wraps the system allocator
//! and counts every `alloc`/`realloc` on a **per-thread** basis, so a test
//! can assert that a code region performs no heap allocations without
//! being perturbed by the test harness or by sibling tests running on
//! other threads.
//!
//! Usage (one test binary per `#[global_allocator]`):
//!
//! ```ignore
//! use alloc_counter::CountingAllocator;
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//!
//! #[test]
//! fn hot_loop_is_allocation_free() {
//!     // ... warm up caches/buffers ...
//!     let before = alloc_counter::allocations_on_this_thread();
//!     // ... the region under test ...
//!     assert_eq!(alloc_counter::allocations_on_this_thread() - before, 0);
//! }
//! ```
//!
//! Only *new* memory requests count (`alloc`, `alloc_zeroed`, and growing
//! `realloc`); `dealloc` is free, so dropping pre-allocated buffers does
//! not trip an assertion. The counter is a plain thread-local `Cell` with
//! const initialization — reading or bumping it never allocates, which is
//! what makes it safe to touch from inside the allocator itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Number of heap allocation requests made by the **current thread** since
/// it started. Monotone; subtract two readings to meter a region.
pub fn allocations_on_this_thread() -> u64 {
    ALLOCATIONS.with(|c| c.get())
}

#[inline]
fn bump() {
    ALLOCATIONS.with(|c| c.set(c.get() + 1));
}

/// System allocator wrapper that counts per-thread allocation requests.
/// Install with `#[global_allocator]`.
pub struct CountingAllocator;

impl CountingAllocator {
    /// The allocator value (const, so it can be a `static`).
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Self {
        CountingAllocator
    }
}

// SAFETY: defers entirely to `System`; the only addition is a thread-local
// counter bump, which performs no allocation and cannot unwind.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A shrinking realloc never requests new memory; a growing one may.
        if new_size > layout.size() {
            bump();
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: the allocator is NOT installed globally in this crate's own
    // test binary; these tests exercise the counter plumbing directly.

    #[test]
    fn counter_starts_monotone_and_bumps() {
        let a = allocations_on_this_thread();
        bump();
        bump();
        let b = allocations_on_this_thread();
        assert_eq!(b - a, 2);
    }

    #[test]
    fn counters_are_per_thread() {
        bump();
        let here = allocations_on_this_thread();
        let there = std::thread::spawn(allocations_on_this_thread)
            .join()
            .unwrap();
        assert!(here >= 1);
        assert_eq!(there, 0, "fresh thread starts at zero");
    }
}
