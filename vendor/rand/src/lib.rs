//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so this in-tree crate
//! implements exactly the rand 0.9 API subset the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 ([`SeedableRng::seed_from_u64`]);
//! * [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`];
//! * [`seq::SliceRandom::shuffle`] and [`seq::IndexedRandom::choose`];
//! * a [`prelude`] mirroring rand's.
//!
//! Everything is deterministic: there is deliberately no `thread_rng` /
//! OS-entropy constructor, which enforces the workspace's explicit-seed
//! policy. The streams differ from crates.io rand's, but all workspace
//! tests fix their own seeds, so swapping the real crate back in only
//! re-rolls the sampled instances, not the correctness of any test.

/// A source of random `u32`/`u64` words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly "at large" by [`Rng::random`] (the shim's
/// stand-in for rand's `StandardUniform` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types with an unbiased bounded sampler (Lemire's method with
/// rejection), for [`Rng::random_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform in `[lo, hi)`. Caller guarantees `lo < hi`.
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform in `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

#[inline]
fn widening_bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Lemire's nearly-divisionless unbiased bounded sampler.
    debug_assert!(span > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut low = m as u64;
    if low < span {
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add(widening_bounded(rng, span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(widening_bounded(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_uniform_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                  i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64);

/// Range argument accepted by [`Rng::random_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl<T: UniformInt> SampleRange for core::ops::Range<T> {
    type Output = T;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "random_range: empty range");
        T::sample_below(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange for core::ops::RangeInclusive<T> {
    type Output = T;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "random_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic, fast, and with 256 bits of state —
    /// plenty for simulation workloads (not cryptographic).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next_sm = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next_sm(), next_sm(), next_sm(), next_sm()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// In-place slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Uniform element selection from indexable collections.
    pub trait IndexedRandom {
        type Output;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::{IndexedRandom, SliceRandom};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs, (0..32).map(|_| c.random()).collect::<Vec<u64>>());
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0..=5u32);
            assert!(y <= 5);
            let f = rng.random_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
        }
        // Range endpoints are reachable.
        let hits: std::collections::HashSet<u32> =
            (0..1000).map(|_| rng.random_range(0..4u32)).collect();
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn unit_interval_and_bool() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut trues = 0usize;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            if rng.random_bool(0.25) {
                trues += 1;
            }
        }
        assert!((1500..3500).contains(&trues), "p=0.25 gave {trues}/10000");
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());

        let pool = [1u32, 2, 3];
        let seen: std::collections::HashSet<u32> =
            (0..200).map(|_| *pool.choose(&mut rng).unwrap()).collect();
        assert_eq!(seen.len(), 3);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
