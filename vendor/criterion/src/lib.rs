//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the subset this workspace's benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::bench_function`],
//! [`BenchmarkId`], and [`Bencher::iter`].
//!
//! Instead of criterion's statistical machinery it runs a fixed warmup
//! followed by `sample_size` timed samples and reports min/mean/max
//! nanoseconds per iteration on stdout — enough to anchor a perf
//! trajectory until the real crate can be wired in.

use std::fmt::Display;
use std::time::Instant;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

/// Times closures under [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    /// Collected mean ns/iter per sample, drained by the caller.
    results: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: find an iteration count that runs long
        // enough to be timeable.
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed.as_millis() >= 5 || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.results
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's default is 100;
    /// the shim default is 10 to keep `cargo bench` fast).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.label, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.label, |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        let r = &b.results;
        if r.is_empty() {
            println!("{}/{}: no samples", self.name, label);
            return;
        }
        let mean = r.iter().sum::<f64>() / r.len() as f64;
        let min = r.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = r.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{}/{}: [{:.1} {:.1} {:.1}] ns/iter ({} samples)",
            self.name,
            label,
            min,
            mean,
            max,
            r.len()
        );
    }
}

/// Entry point handed to every benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group(name.to_owned());
        g.bench_function(BenchmarkId::from(""), &mut f);
        g.finish();
        self
    }
}

/// Re-export so `criterion::black_box` callers keep working; benches in
/// this workspace use `std::hint::black_box` directly.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a
            // `harness = false` binary must tolerate them. `--list` must
            // print nothing and exit (test-runner integration).
            let args: Vec<String> = std::env::args().skip(1).collect();
            if args.iter().any(|a| a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_prints() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0u64;
        g.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_formats_label() {
        let id = BenchmarkId::new("family", "gnp");
        assert_eq!(id.label, "family/gnp");
        assert_eq!(BenchmarkId::from_parameter(16).label, "16");
    }
}
