//! Offline shim for [`parking_lot`](https://crates.io/crates/parking_lot).
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly (a poisoned std lock — only possible
//! after another thread panicked while holding it — panics here, which is
//! parking_lot-equivalent behavior for this workspace's usage).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("mutex poisoned")
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("rwlock poisoned")
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }
}
